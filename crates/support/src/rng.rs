//! A small, deterministic pseudo-random number generator.
//!
//! The workspace builds with no external dependencies, so the workload
//! generators and property tests use this hand-rolled generator instead of
//! the `rand` crate. The algorithm is xoshiro256++ seeded through
//! SplitMix64 — the same construction `rand`'s `SmallRng` family uses — so
//! streams are well distributed, fast, and reproducible byte-for-byte from
//! a `u64` seed on every platform.
//!
//! The API mirrors the subset of `rand` the workspace relies on:
//! [`Rng::seed_from_u64`], [`Rng::gen_bool`], and [`Rng::gen_range`] over
//! half-open and inclusive ranges of the common unsigned integer types.
//!
//! # Examples
//!
//! ```
//! use ddpa_support::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let i = rng.gen_range(0..10usize);
//! assert!(i < 10);
//! let b = rng.gen_bool(0.5);
//! let j = rng.gen_range(1..=6u8);
//! assert!((1..=6).contains(&j));
//! let _ = b;
//! ```

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator from a single `u64` via SplitMix64, as
    /// recommended by the xoshiro authors. The same seed always produces
    /// the same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // Compare the top 53 bits against the scaled probability; 53 bits
        // is exactly the f64 mantissa, so the comparison is unbiased.
        let threshold = (p * (1u64 << 53) as f64) as u64;
        (self.next_u64() >> 11) < threshold
    }

    /// A uniform value in `range`. Panics on an empty range, matching
    /// `rand`'s behaviour.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` in `[0, bound)` by Lemire's multiply-shift with
    /// rejection (unbiased).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // `threshold` = 2^64 mod bound: low products under it are the
        // biased tail and get rejected.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = (self.next_u64() as u128) * (bound as u128);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample; panics if the range is empty.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample(self, rng: &mut Rng) -> $ty {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $ty
            }
        }
        impl SampleRange for RangeInclusive<$ty> {
            type Output = $ty;
            fn sample(self, rng: &mut Rng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + rng.below(span + 1) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, usize, u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..17usize);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(0..=3u8);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits={hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn inclusive_full_u64_range_does_not_overflow() {
        let mut rng = Rng::seed_from_u64(6);
        let _ = rng.gen_range(0..=u64::MAX);
    }
}
