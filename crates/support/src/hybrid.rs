//! The hybrid points-to set representation.
//!
//! The vast majority of points-to sets in real C programs are small (a
//! handful of allocation sites), while a few hub sets grow large.
//! [`HybridSet`] keeps small sets as an inline sorted `Vec<u32>` and
//! promotes to a [`SparseBitSet`] once the set outgrows
//! [`HybridSet::PROMOTE_AT`] elements.

use std::fmt;

use crate::bitset::{self, SparseBitSet};

/// A set of `u32` values optimized for the small-set common case.
///
/// # Examples
///
/// ```
/// use ddpa_support::HybridSet;
///
/// let mut s = HybridSet::new();
/// for v in [4, 2, 2, 9] {
///     s.insert(v);
/// }
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 4, 9]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum HybridSet {
    /// Sorted, deduplicated values.
    Small(Vec<u32>),
    /// Promoted representation for large sets.
    Large(SparseBitSet),
}

impl HybridSet {
    /// Small sets promote to the bitset representation past this size.
    pub const PROMOTE_AT: usize = 16;

    /// Creates an empty set.
    pub const fn new() -> Self {
        HybridSet::Small(Vec::new())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            HybridSet::Small(v) => v.len(),
            HybridSet::Large(b) => b.len(),
        }
    }

    /// Returns `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if `value` is in the set.
    pub fn contains(&self, value: u32) -> bool {
        match self {
            HybridSet::Small(v) => v.binary_search(&value).is_ok(),
            HybridSet::Large(b) => b.contains(value),
        }
    }

    fn promote(&mut self) {
        if let HybridSet::Small(v) = self {
            let bits: SparseBitSet = v.iter().copied().collect();
            *self = HybridSet::Large(bits);
        }
    }

    /// Inserts `value`; returns `true` if it was not already present.
    pub fn insert(&mut self, value: u32) -> bool {
        match self {
            HybridSet::Small(v) => match v.binary_search(&value) {
                Ok(_) => false,
                Err(pos) => {
                    v.insert(pos, value);
                    if v.len() > Self::PROMOTE_AT {
                        self.promote();
                    }
                    true
                }
            },
            HybridSet::Large(b) => b.insert(value),
        }
    }

    /// Unions `other` into `self`, pushing each newly added value onto
    /// `delta`. Returns `true` if `self` changed.
    pub fn union_with_delta(&mut self, other: &HybridSet, delta: &mut Vec<u32>) -> bool {
        let before = delta.len();
        match other {
            HybridSet::Small(vals) => {
                for &v in vals {
                    if self.insert(v) {
                        delta.push(v);
                    }
                }
            }
            HybridSet::Large(bits) => match self {
                HybridSet::Large(mine) => {
                    mine.union_with_delta(bits, delta);
                }
                HybridSet::Small(_) => {
                    for v in bits.iter() {
                        if self.insert(v) {
                            delta.push(v);
                        }
                    }
                }
            },
        }
        delta.len() > before
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &HybridSet) -> bool {
        match (&mut *self, other) {
            (HybridSet::Large(mine), HybridSet::Large(theirs)) => mine.union_with(theirs),
            _ => {
                let mut changed = false;
                for v in other.iter() {
                    changed |= self.insert(v);
                }
                changed
            }
        }
    }

    /// Returns `true` if `self` and `other` share at least one element.
    pub fn intersects(&self, other: &HybridSet) -> bool {
        match (self, other) {
            (HybridSet::Large(a), HybridSet::Large(b)) => a.intersects(b),
            (HybridSet::Small(a), _) => a.iter().any(|&v| other.contains(v)),
            (_, HybridSet::Small(b)) => b.iter().any(|&v| self.contains(v)),
        }
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &HybridSet) -> bool {
        self.iter().all(|v| other.contains(v))
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        match self {
            HybridSet::Small(v) => Iter::Small(v.iter()),
            HybridSet::Large(b) => Iter::Large(b.iter()),
        }
    }

    /// Removes all elements, keeping the small representation.
    pub fn clear(&mut self) {
        *self = HybridSet::new();
    }

    /// Returns the single element if the set has exactly one.
    pub fn as_singleton(&self) -> Option<u32> {
        if self.len() == 1 {
            self.iter().next()
        } else {
            None
        }
    }
}

impl Default for HybridSet {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator over a [`HybridSet`], produced by [`HybridSet::iter`].
#[derive(Clone, Debug)]
pub enum Iter<'a> {
    /// Iterating the inline representation.
    Small(std::slice::Iter<'a, u32>),
    /// Iterating the bitset representation.
    Large(bitset::Iter<'a>),
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            Iter::Small(i) => i.next().copied(),
            Iter::Large(i) => i.next(),
        }
    }
}

impl<'a> IntoIterator for &'a HybridSet {
    type Item = u32;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<u32> for HybridSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut s = HybridSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl Extend<u32> for HybridSet {
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl fmt::Debug for HybridSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_small_then_promotes() {
        let mut s = HybridSet::new();
        for v in 0..HybridSet::PROMOTE_AT as u32 {
            s.insert(v * 10);
        }
        assert!(matches!(s, HybridSet::Small(_)));
        s.insert(999);
        assert!(matches!(s, HybridSet::Large(_)));
        assert_eq!(s.len(), HybridSet::PROMOTE_AT + 1);
        assert!(s.contains(999));
        assert!(s.contains(0));
    }

    #[test]
    fn insert_is_sorted_and_dedup() {
        let mut s = HybridSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5]);
    }

    #[test]
    fn union_with_delta_small_and_large() {
        let big: HybridSet = (0..40).collect();
        let mut s: HybridSet = [1, 2].into_iter().collect();
        let mut delta = Vec::new();
        assert!(s.union_with_delta(&big, &mut delta));
        assert_eq!(s.len(), 40);
        assert_eq!(delta.len(), 38);
        delta.clear();
        assert!(!s.union_with_delta(&big, &mut delta));
    }

    #[test]
    fn intersects_mixed_representations() {
        let big: HybridSet = (100..200).collect();
        let small: HybridSet = [5, 150].into_iter().collect();
        let disjoint: HybridSet = [1, 2].into_iter().collect();
        assert!(big.intersects(&small));
        assert!(small.intersects(&big));
        assert!(!big.intersects(&disjoint));
    }

    #[test]
    fn singleton_detection() {
        let mut s = HybridSet::new();
        assert_eq!(s.as_singleton(), None);
        s.insert(7);
        assert_eq!(s.as_singleton(), Some(7));
        s.insert(8);
        assert_eq!(s.as_singleton(), None);
    }

    #[test]
    fn subset_across_representations() {
        let big: HybridSet = (0..50).collect();
        let small: HybridSet = [3, 17, 42].into_iter().collect();
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
    }
}
