//! A sorted, chunked sparse bitset over `u32` keys.
//!
//! Points-to sets for C programs are heavy-tailed: most are tiny but a few
//! contain thousands of elements clustered around allocation-site id ranges.
//! [`SparseBitSet`] stores 64-bit words keyed by their word index in a
//! sorted vector, giving compact storage, deterministic iteration order and
//! merge-style unions.

use std::fmt;

const WORD_BITS: u32 = 64;

/// A sparse set of `u32` values.
///
/// # Examples
///
/// ```
/// use ddpa_support::SparseBitSet;
///
/// let mut s = SparseBitSet::new();
/// assert!(s.insert(3));
/// assert!(s.insert(100_000));
/// assert!(!s.insert(3));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 100_000]);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct SparseBitSet {
    /// Sorted by word index; words are never zero.
    words: Vec<(u32, u64)>,
    len: usize,
}

impl SparseBitSet {
    /// Creates an empty set.
    pub const fn new() -> Self {
        Self {
            words: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn split(value: u32) -> (u32, u64) {
        (value / WORD_BITS, 1u64 << (value % WORD_BITS))
    }

    /// Returns `true` if `value` is in the set.
    pub fn contains(&self, value: u32) -> bool {
        let (key, bit) = Self::split(value);
        match self.words.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(pos) => self.words[pos].1 & bit != 0,
            Err(_) => false,
        }
    }

    /// Inserts `value`; returns `true` if it was not already present.
    pub fn insert(&mut self, value: u32) -> bool {
        let (key, bit) = Self::split(value);
        match self.words.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(pos) => {
                let word = &mut self.words[pos].1;
                if *word & bit != 0 {
                    false
                } else {
                    *word |= bit;
                    self.len += 1;
                    true
                }
            }
            Err(pos) => {
                self.words.insert(pos, (key, bit));
                self.len += 1;
                true
            }
        }
    }

    /// Removes `value`; returns `true` if it was present.
    pub fn remove(&mut self, value: u32) -> bool {
        let (key, bit) = Self::split(value);
        match self.words.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(pos) => {
                let word = &mut self.words[pos].1;
                if *word & bit == 0 {
                    false
                } else {
                    *word &= !bit;
                    self.len -= 1;
                    if *word == 0 {
                        self.words.remove(pos);
                    }
                    true
                }
            }
            Err(_) => false,
        }
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &SparseBitSet) -> bool {
        let mut changed = false;
        let mut merged = Vec::with_capacity(self.words.len() + other.words.len());
        let mut len = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.words.len() && j < other.words.len() {
            let (ka, wa) = self.words[i];
            let (kb, wb) = other.words[j];
            if ka < kb {
                merged.push((ka, wa));
                len += wa.count_ones() as usize;
                i += 1;
            } else if kb < ka {
                merged.push((kb, wb));
                len += wb.count_ones() as usize;
                changed = true;
                j += 1;
            } else {
                let w = wa | wb;
                if w != wa {
                    changed = true;
                }
                merged.push((ka, w));
                len += w.count_ones() as usize;
                i += 1;
                j += 1;
            }
        }
        for &(k, w) in &self.words[i..] {
            merged.push((k, w));
            len += w.count_ones() as usize;
        }
        for &(k, w) in &other.words[j..] {
            merged.push((k, w));
            len += w.count_ones() as usize;
            changed = true;
        }
        if changed {
            self.words = merged;
            self.len = len;
        }
        changed
    }

    /// Unions `other` into `self`, pushing every newly added value onto
    /// `delta`. Returns `true` if `self` changed.
    pub fn union_with_delta(&mut self, other: &SparseBitSet, delta: &mut Vec<u32>) -> bool {
        let before = delta.len();
        // Collect the new bits per word first, then apply.
        let mut additions: Vec<(u32, u64)> = Vec::new();
        let mut i = 0usize;
        for &(kb, wb) in &other.words {
            while i < self.words.len() && self.words[i].0 < kb {
                i += 1;
            }
            let existing = if i < self.words.len() && self.words[i].0 == kb {
                self.words[i].1
            } else {
                0
            };
            let new_bits = wb & !existing;
            if new_bits != 0 {
                additions.push((kb, new_bits));
            }
        }
        for (k, mut bits) in additions {
            while bits != 0 {
                let tz = bits.trailing_zeros();
                delta.push(k * WORD_BITS + tz);
                bits &= bits - 1;
            }
        }
        let changed = delta.len() > before;
        if changed {
            for &v in &delta[before..] {
                self.insert(v);
            }
        }
        changed
    }

    /// Returns `true` if `self` and `other` share at least one element.
    pub fn intersects(&self, other: &SparseBitSet) -> bool {
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.words.len() && j < other.words.len() {
            let (ka, wa) = self.words[i];
            let (kb, wb) = other.words[j];
            if ka < kb {
                i += 1;
            } else if kb < ka {
                j += 1;
            } else {
                if wa & wb != 0 {
                    return true;
                }
                i += 1;
                j += 1;
            }
        }
        false
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &SparseBitSet) -> bool {
        let mut j = 0usize;
        for &(ka, wa) in &self.words {
            while j < other.words.len() && other.words[j].0 < ka {
                j += 1;
            }
            if j >= other.words.len() || other.words[j].0 != ka || wa & !other.words[j].1 != 0 {
                return false;
            }
        }
        true
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            pos: 0,
            current: self.words.first().map_or(0, |w| w.1),
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }
}

/// Iterator over a [`SparseBitSet`], produced by [`SparseBitSet::iter`].
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    words: &'a [(u32, u64)],
    pos: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.pos >= self.words.len() {
                return None;
            }
            if self.current == 0 {
                self.pos += 1;
                self.current = self.words.get(self.pos).map_or(0, |w| w.1);
                continue;
            }
            let tz = self.current.trailing_zeros();
            self.current &= self.current - 1;
            return Some(self.words[self.pos].0 * WORD_BITS + tz);
        }
    }
}

impl<'a> IntoIterator for &'a SparseBitSet {
    type Item = u32;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<u32> for SparseBitSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut set = SparseBitSet::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

impl Extend<u32> for SparseBitSet {
    fn extend<T: IntoIterator<Item = u32>>(&mut self, iter: T) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl fmt::Debug for SparseBitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = SparseBitSet::new();
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(1_000_000));
        assert_eq!(s.len(), 4);
        assert!(s.contains(63));
        assert!(!s.contains(62));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 1_000_000]);
    }

    #[test]
    fn union_with_merges() {
        let a: SparseBitSet = [1, 5, 200].into_iter().collect();
        let mut b: SparseBitSet = [5, 7].into_iter().collect();
        assert!(b.union_with(&a));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![1, 5, 7, 200]);
        assert!(!b.union_with(&a));
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn union_with_delta_reports_new_elements() {
        let a: SparseBitSet = [1, 2, 3, 1000].into_iter().collect();
        let mut b: SparseBitSet = [2, 4].into_iter().collect();
        let mut delta = Vec::new();
        assert!(b.union_with_delta(&a, &mut delta));
        assert_eq!(delta, vec![1, 3, 1000]);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 1000]);
        delta.clear();
        assert!(!b.union_with_delta(&a, &mut delta));
        assert!(delta.is_empty());
    }

    #[test]
    fn intersects_and_subset() {
        let a: SparseBitSet = [1, 2, 3].into_iter().collect();
        let b: SparseBitSet = [3, 4].into_iter().collect();
        let c: SparseBitSet = [4, 5].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let sub: SparseBitSet = [1, 3].into_iter().collect();
        assert!(sub.is_subset(&a));
        assert!(!b.is_subset(&a));
        assert!(SparseBitSet::new().is_subset(&a));
    }

    #[test]
    fn empty_set_behaves() {
        let s = SparseBitSet::new();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }
}
