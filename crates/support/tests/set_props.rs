//! Property tests: the set implementations must behave exactly like
//! `BTreeSet<u32>` under every operation the analyses use. Inputs come
//! from a seeded RNG, mixing small and large keys so both the inline and
//! bitset representations get exercised.

use std::collections::BTreeSet;

use ddpa_support::rng::Rng;
use ddpa_support::{HybridSet, SparseBitSet};

const CASES: usize = 256;

/// A random key vector mixing magnitudes (small, medium, any u32).
fn values(rng: &mut Rng) -> Vec<u32> {
    let len = rng.gen_range(0..80usize);
    (0..len)
        .map(|_| match rng.gen_range(0..3u8) {
            0 => rng.gen_range(0u32..64),
            1 => rng.gen_range(0u32..4096),
            _ => rng.gen_range(0u32..=u32::MAX),
        })
        .collect()
}

#[test]
fn sparse_bitset_matches_btreeset() {
    let mut rng = Rng::seed_from_u64(0x5e7_0001);
    for _ in 0..CASES {
        let (a, b, probe) = (values(&mut rng), values(&mut rng), values(&mut rng));
        let mut sparse = SparseBitSet::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for &v in &a {
            assert_eq!(sparse.insert(v), model.insert(v));
        }
        assert_eq!(sparse.len(), model.len());
        assert_eq!(
            sparse.iter().collect::<Vec<_>>(),
            model.iter().copied().collect::<Vec<_>>()
        );

        let other: SparseBitSet = b.iter().copied().collect();
        let other_model: BTreeSet<u32> = b.iter().copied().collect();
        assert_eq!(
            sparse.intersects(&other),
            model.intersection(&other_model).next().is_some()
        );
        assert_eq!(sparse.is_subset(&other), model.is_subset(&other_model));

        let mut delta = Vec::new();
        let changed = sparse.union_with_delta(&other, &mut delta);
        let expected_delta: Vec<u32> = other_model.difference(&model).copied().collect();
        let mut sorted_delta = delta.clone();
        sorted_delta.sort_unstable();
        assert_eq!(sorted_delta, expected_delta);
        assert_eq!(changed, !delta.is_empty());
        model.extend(other_model.iter().copied());
        assert_eq!(
            sparse.iter().collect::<Vec<_>>(),
            model.iter().copied().collect::<Vec<_>>()
        );

        for &v in &probe {
            assert_eq!(sparse.contains(v), model.contains(&v));
        }
    }
}

#[test]
fn sparse_bitset_remove_matches() {
    let mut rng = Rng::seed_from_u64(0x5e7_0002);
    for _ in 0..CASES {
        let (a, removals) = (values(&mut rng), values(&mut rng));
        let mut sparse: SparseBitSet = a.iter().copied().collect();
        let mut model: BTreeSet<u32> = a.iter().copied().collect();
        for &v in &removals {
            assert_eq!(sparse.remove(v), model.remove(&v));
        }
        assert_eq!(sparse.len(), model.len());
        assert_eq!(
            sparse.iter().collect::<Vec<_>>(),
            model.iter().copied().collect::<Vec<_>>()
        );
    }
}

#[test]
fn hybrid_matches_btreeset() {
    let mut rng = Rng::seed_from_u64(0x5e7_0003);
    for _ in 0..CASES {
        let (a, b, probe) = (values(&mut rng), values(&mut rng), values(&mut rng));
        let mut hybrid = HybridSet::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for &v in &a {
            assert_eq!(hybrid.insert(v), model.insert(v));
        }
        assert_eq!(hybrid.len(), model.len());
        assert_eq!(
            hybrid.iter().collect::<Vec<_>>(),
            model.iter().copied().collect::<Vec<_>>()
        );

        let other: HybridSet = b.iter().copied().collect();
        let other_model: BTreeSet<u32> = b.iter().copied().collect();
        assert_eq!(
            hybrid.intersects(&other),
            model.intersection(&other_model).next().is_some()
        );
        assert_eq!(hybrid.is_subset(&other), model.is_subset(&other_model));

        let mut delta = Vec::new();
        hybrid.union_with_delta(&other, &mut delta);
        let mut expected: BTreeSet<u32> = model.clone();
        expected.extend(other_model);
        assert_eq!(hybrid.len(), expected.len());
        assert_eq!(
            hybrid.iter().collect::<Vec<_>>(),
            expected.iter().copied().collect::<Vec<_>>()
        );
        // Delta = exactly the new elements, in some order, no duplicates.
        let delta_set: BTreeSet<u32> = delta.iter().copied().collect();
        assert_eq!(delta_set.len(), delta.len(), "duplicate delta entries");
        assert_eq!(
            delta_set,
            expected
                .difference(&model)
                .copied()
                .collect::<BTreeSet<u32>>()
        );

        for &v in &probe {
            assert_eq!(hybrid.contains(v), expected.contains(&v));
        }
    }
}

#[test]
fn hybrid_union_with_agrees_with_delta_variant() {
    let mut rng = Rng::seed_from_u64(0x5e7_0004);
    for _ in 0..CASES {
        let (a, b) = (values(&mut rng), values(&mut rng));
        let mut h1: HybridSet = a.iter().copied().collect();
        let mut h2: HybridSet = a.iter().copied().collect();
        let other: HybridSet = b.iter().copied().collect();
        let changed1 = h1.union_with(&other);
        let mut delta = Vec::new();
        let changed2 = h2.union_with_delta(&other, &mut delta);
        assert_eq!(changed1, changed2);
        assert_eq!(h1.iter().collect::<Vec<_>>(), h2.iter().collect::<Vec<_>>());
    }
}

#[test]
fn hybrid_singleton_is_consistent() {
    let mut rng = Rng::seed_from_u64(0x5e7_0005);
    for _ in 0..CASES {
        let a = values(&mut rng);
        let hybrid: HybridSet = a.iter().copied().collect();
        match hybrid.as_singleton() {
            Some(v) => {
                assert_eq!(hybrid.len(), 1);
                assert!(hybrid.contains(v));
            }
            None => assert_ne!(hybrid.len(), 1),
        }
    }
}
