//! Property tests: the set implementations must behave exactly like
//! `BTreeSet<u32>` under every operation the analyses use.

use std::collections::BTreeSet;

use proptest::prelude::*;

use ddpa_support::{HybridSet, SparseBitSet};

fn values() -> impl Strategy<Value = Vec<u32>> {
    // Mix small and large keys so both representations get exercised.
    prop::collection::vec(
        prop_oneof![0u32..64, 0u32..4096, prop::num::u32::ANY],
        0..80,
    )
}

proptest! {
    #[test]
    fn sparse_bitset_matches_btreeset(a in values(), b in values(), probe in values()) {
        let mut sparse = SparseBitSet::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for &v in &a {
            prop_assert_eq!(sparse.insert(v), model.insert(v));
        }
        prop_assert_eq!(sparse.len(), model.len());
        prop_assert_eq!(sparse.iter().collect::<Vec<_>>(),
                        model.iter().copied().collect::<Vec<_>>());

        let other: SparseBitSet = b.iter().copied().collect();
        let other_model: BTreeSet<u32> = b.iter().copied().collect();
        prop_assert_eq!(sparse.intersects(&other),
                        model.intersection(&other_model).next().is_some());
        prop_assert_eq!(sparse.is_subset(&other), model.is_subset(&other_model));

        let mut delta = Vec::new();
        let changed = sparse.union_with_delta(&other, &mut delta);
        let expected_delta: Vec<u32> =
            other_model.difference(&model).copied().collect();
        let mut sorted_delta = delta.clone();
        sorted_delta.sort_unstable();
        prop_assert_eq!(sorted_delta, expected_delta);
        prop_assert_eq!(changed, !delta.is_empty());
        model.extend(other_model.iter().copied());
        prop_assert_eq!(sparse.iter().collect::<Vec<_>>(),
                        model.iter().copied().collect::<Vec<_>>());

        for &v in &probe {
            prop_assert_eq!(sparse.contains(v), model.contains(&v));
        }
    }

    #[test]
    fn sparse_bitset_remove_matches(a in values(), removals in values()) {
        let mut sparse: SparseBitSet = a.iter().copied().collect();
        let mut model: BTreeSet<u32> = a.iter().copied().collect();
        for &v in &removals {
            prop_assert_eq!(sparse.remove(v), model.remove(&v));
        }
        prop_assert_eq!(sparse.len(), model.len());
        prop_assert_eq!(sparse.iter().collect::<Vec<_>>(),
                        model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn hybrid_matches_btreeset(a in values(), b in values(), probe in values()) {
        let mut hybrid = HybridSet::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for &v in &a {
            prop_assert_eq!(hybrid.insert(v), model.insert(v));
        }
        prop_assert_eq!(hybrid.len(), model.len());
        prop_assert_eq!(hybrid.iter().collect::<Vec<_>>(),
                        model.iter().copied().collect::<Vec<_>>());

        let other: HybridSet = b.iter().copied().collect();
        let other_model: BTreeSet<u32> = b.iter().copied().collect();
        prop_assert_eq!(hybrid.intersects(&other),
                        model.intersection(&other_model).next().is_some());
        prop_assert_eq!(hybrid.is_subset(&other), model.is_subset(&other_model));

        let mut delta = Vec::new();
        hybrid.union_with_delta(&other, &mut delta);
        let mut expected: BTreeSet<u32> = model.clone();
        expected.extend(other_model);
        prop_assert_eq!(hybrid.len(), expected.len());
        prop_assert_eq!(hybrid.iter().collect::<Vec<_>>(),
                        expected.iter().copied().collect::<Vec<_>>());
        // Delta = exactly the new elements, in some order, no duplicates.
        let delta_set: BTreeSet<u32> = delta.iter().copied().collect();
        prop_assert_eq!(delta_set.len(), delta.len(), "duplicate delta entries");
        prop_assert_eq!(delta_set,
                        expected.difference(&model).copied().collect::<BTreeSet<u32>>());

        for &v in &probe {
            prop_assert_eq!(hybrid.contains(v), expected.contains(&v));
        }
    }

    #[test]
    fn hybrid_union_with_agrees_with_delta_variant(a in values(), b in values()) {
        let mut h1: HybridSet = a.iter().copied().collect();
        let mut h2: HybridSet = a.iter().copied().collect();
        let other: HybridSet = b.iter().copied().collect();
        let changed1 = h1.union_with(&other);
        let mut delta = Vec::new();
        let changed2 = h2.union_with_delta(&other, &mut delta);
        prop_assert_eq!(changed1, changed2);
        prop_assert_eq!(h1.iter().collect::<Vec<_>>(), h2.iter().collect::<Vec<_>>());
    }

    #[test]
    fn hybrid_singleton_is_consistent(a in values()) {
        let hybrid: HybridSet = a.iter().copied().collect();
        match hybrid.as_singleton() {
            Some(v) => {
                prop_assert_eq!(hybrid.len(), 1);
                prop_assert!(hybrid.contains(v));
            }
            None => prop_assert_ne!(hybrid.len(), 1),
        }
    }
}
