//! Lock-free log-bucketed latency/size histograms.
//!
//! A [`Histogram`] records `u64` samples into log-linear buckets: each
//! power of two is split into four sub-buckets, so the relative error of
//! any reported quantile is at most 25% while the whole table is a fixed
//! 252-slot array of relaxed atomics. Recording is one `fetch_add` per
//! sample (plus a `fetch_max` for the exact maximum) — no lock, no
//! allocation — so it is safe on the server's request path and inside
//! parallel batch workers.
//!
//! Histograms are *mergeable* ([`Histogram::merge_from`]): per-bucket
//! counts add, so merging is exact and associative, which lets per-worker
//! histograms fold into one report. Quantiles ([`Histogram::quantile`])
//! return the inclusive upper bound of the target bucket clamped to the
//! exact recorded maximum, guaranteeing `p50 ≤ p90 ≤ p99 ≤ max`.
//!
//! By convention the workspace records *microseconds* in histograms whose
//! names end in `_us` (see [`Histogram::record_duration`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sub-buckets per power of two (two bits of mantissa).
const SUBS: u64 = 4;
/// Bucket count: indices 0..4 are the exact values 0..4; every later
/// power of two contributes four sub-buckets up to the top of `u64`.
const NUM_BUCKETS: usize = ((63 - 1) * SUBS as usize) + SUBS as usize;

/// The bucket index a value lands in. Values below [`SUBS`] get exact
/// buckets; larger values index by (exponent, top-two-mantissa-bits).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64; // >= 2 since v >= 4
    let sub = (v >> (exp - 2)) & (SUBS - 1);
    ((exp - 1) * SUBS + sub) as usize
}

/// The smallest value that lands in bucket `index`.
fn bucket_low(index: usize) -> u64 {
    let i = index as u64;
    if i < SUBS {
        return i;
    }
    let exp = i / SUBS + 1;
    let sub = i % SUBS;
    (1u64 << exp) | (sub << (exp - 2))
}

/// The largest value that lands in bucket `index` (inclusive).
fn bucket_high(index: usize) -> u64 {
    if index + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_low(index + 1) - 1
    }
}

#[derive(Debug)]
struct Inner {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free log-bucketed histogram. Cloning shares the buckets, like
/// [`crate::Counter`]; register named instances via
/// [`crate::Registry::histogram`].
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<Inner>);

impl Histogram {
    /// A detached histogram not registered anywhere.
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (the workspace convention for
    /// `*_us` histograms; saturates past `u64::MAX` microseconds).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow, like counters).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The estimated `q`-quantile (`q` clamped to `[0, 1]`): the upper
    /// bound of the bucket holding the target rank, clamped to the exact
    /// maximum. At most 25% above the true value; monotone in `q`; 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based: ceil(q * count), at least 1.
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_high(i).min(self.max());
            }
        }
        // Racy concurrent recording can leave count ahead of the bucket
        // sum for a moment; the max is the safe answer.
        self.max()
    }

    /// Folds `other`'s samples into `self`. Per-bucket counts add, so the
    /// merge is exact (no re-bucketing error) and associative. Merging a
    /// histogram into itself (including a clone sharing the same buckets)
    /// is a no-op rather than a silent doubling of every count.
    pub fn merge_from(&self, other: &Histogram) {
        if Arc::ptr_eq(&self.0, &other.0) {
            return;
        }
        for (mine, theirs) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.0.count.fetch_add(other.count(), Ordering::Relaxed);
        self.0.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.0.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Nonzero buckets as `(lower_bound, count)` pairs, in value order —
    /// for tests and debugging dumps.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_low(i), n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_and_contiguous() {
        // Small values get exact buckets.
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize, "value {v}");
            assert_eq!(bucket_low(bucket_index(v)), v);
        }
        // Every value lies within its bucket's [low, high] range, and the
        // index is monotone across boundaries.
        let probes = [
            8u64,
            9,
            15,
            16,
            17,
            31,
            32,
            1000,
            1023,
            1024,
            1025,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = 0usize;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(bucket_low(i) <= v, "low({i}) <= {v}");
            assert!(v <= bucket_high(i), "{v} <= high({i})");
            assert!(i >= last, "indices monotone at {v}");
            last = i;
        }
        // Buckets tile the line: high(i) + 1 == low(i + 1).
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_high(i) + 1, bucket_low(i + 1), "bucket {i}");
        }
        assert_eq!(bucket_high(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let h = Histogram::detached();
        h.record(777);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 777);
        assert_eq!(h.max(), 777);
        // The bucket bound is clamped to the exact max.
        assert_eq!(h.quantile(0.5), 777);
        assert_eq!(h.quantile(1.0), 777);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let h = Histogram::detached();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for &(q, truth) in &[(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let est = h.quantile(q);
            assert!(est >= truth, "q{q}: {est} >= {truth}");
            assert!(
                est <= truth + truth / 4 + 1,
                "q{q}: {est} within 25% above {truth}"
            );
        }
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn concurrent_recording_sums_exactly() {
        let h = Histogram::detached();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        // Sum of 0..4000.
        assert_eq!(h.sum(), 3999 * 4000 / 2);
        assert_eq!(h.max(), 3999);
        let bucketed: u64 = h.nonzero_buckets().iter().map(|&(_, n)| n).sum();
        assert_eq!(bucketed, 4000, "no sample lost to a bucket race");
    }

    #[test]
    fn merge_is_exact_and_associative() {
        let seed_values = |vals: &[u64]| {
            let h = Histogram::detached();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = || seed_values(&[1, 5, 9000, 77]);
        let b = || seed_values(&[2, 2, 2, 1 << 40]);
        let c = || seed_values(&[0, u64::MAX]);

        // (a ∪ b) ∪ c
        let left = a();
        left.merge_from(&b());
        left.merge_from(&c());
        // a ∪ (b ∪ c)
        let bc = b();
        bc.merge_from(&c());
        let right = a();
        right.merge_from(&bc);

        assert_eq!(left.nonzero_buckets(), right.nonzero_buckets());
        assert_eq!(left.count(), right.count());
        assert_eq!(left.sum(), right.sum());
        assert_eq!(left.max(), right.max());
        assert_eq!(left.count(), 10);
    }

    #[test]
    fn merge_empty_into_empty_stays_empty() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        a.merge_from(&b);
        assert_eq!(a.count(), 0);
        assert_eq!(a.sum(), 0);
        assert_eq!(a.max(), 0);
        assert_eq!(a.quantile(0.99), 0);
        assert!(a.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_preserves_saturated_max_bucket() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        b.record(u64::MAX);
        b.record(u64::MAX - 1);
        a.merge_from(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), u64::MAX);
        // Both samples land in the top bucket; the quantile clamps to the
        // exact max instead of overflowing past it.
        assert_eq!(a.quantile(1.0), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        let top: u64 = a.nonzero_buckets().iter().map(|&(_, n)| n).sum();
        assert_eq!(top, 2, "no sample lost at the saturated end of the range");
        // Sum wraps (documented counter-like behavior) but must match the
        // wrapping sum of the inputs, not drift.
        assert_eq!(a.sum(), u64::MAX.wrapping_add(u64::MAX - 1));
    }

    #[test]
    fn self_merge_is_a_no_op() {
        let h = Histogram::detached();
        h.record(5);
        h.record(900);
        h.merge_from(&h);
        assert_eq!(h.count(), 2, "self-merge must not double counts");
        assert_eq!(h.sum(), 905);
        // A clone shares the same buckets — merging it in is the same
        // aliasing hazard and must also be a no-op.
        let alias = h.clone();
        h.merge_from(&alias);
        assert_eq!(h.count(), 2);
        assert_eq!(h.nonzero_buckets().iter().map(|&(_, n)| n).sum::<u64>(), 2);
        // A genuinely distinct histogram with equal contents still merges.
        let other = Histogram::detached();
        other.record(5);
        h.merge_from(&other);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantiles_are_monotone_over_seeded_random_input() {
        // Hand-rolled LCG (no external deps, deterministic).
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 17
        };
        let h = Histogram::detached();
        for _ in 0..10_000 {
            h.record(next() % 1_000_000);
        }
        let (p50, p90, p99, max) = (h.quantile(0.5), h.quantile(0.9), h.quantile(0.99), h.max());
        assert!(p50 <= p90, "{p50} <= {p90}");
        assert!(p90 <= p99, "{p90} <= {p99}");
        assert!(p99 <= max, "{p99} <= {max}");
        assert!(p50 > 0);
    }

    #[test]
    fn record_duration_uses_microseconds() {
        let h = Histogram::detached();
        h.record_duration(Duration::from_millis(3));
        assert_eq!(h.sum(), 3_000);
        assert_eq!(h.max(), 3_000);
    }
}
