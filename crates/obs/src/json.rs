//! Minimal hand-rolled JSON: escaping, a value tree, a reader, and a
//! validator.
//!
//! The workspace has no serde, so this module provides just enough JSON
//! for metrics export and the `ddpa-serve` wire protocol: string escaping
//! per RFC 8259, a [`JsonValue`] tree with a `Display` serializer, a
//! strict recursive-descent reader ([`parse_json`]) producing that tree,
//! and [`validate_jsonl_line`], which the CLI tests and CI smoke test use
//! to prove that every emitted line really is one standalone JSON object.

use std::fmt;

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters as `\u00XX`; non-ASCII passes through as UTF-8,
/// which RFC 8259 permits without escaping).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `s` escaped and wrapped in quotes.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// A JSON value tree. Objects keep insertion order (metric names are
/// pre-sorted by the registry).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (counters, counts).
    U64(u64),
    /// Floating point; non-finite values serialize as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Looks up `key` in an object (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The unsigned-integer payload. Integral non-negative floats (the
    /// reader only produces `F64` for fractional or huge numbers) are not
    /// converted — wire fields that mean counts must arrive as integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::U64(n) => write!(f, "{n}"),
            JsonValue::F64(x) if x.is_finite() => write!(f, "{x}"),
            JsonValue::F64(_) => f.write_str("null"),
            JsonValue::Str(s) => f.write_str(&escaped(s)),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escaped(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses `s` as exactly one JSON value (strict: nothing but whitespace
/// may follow). Errors carry the byte offset of the first violation.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        src: s,
        b: s.as_bytes(),
        i: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing content at byte {}", p.i));
    }
    Ok(v)
}

/// Checks that `line` is exactly one JSON *object* (the JSONL contract):
/// a strict recursive-descent parse with nothing but whitespace after the
/// closing brace. Returns a description of the first violation.
pub fn validate_jsonl_line(line: &str) -> Result<(), String> {
    let mut p = Parser {
        src: line,
        b: line.as_bytes(),
        i: 0,
        depth: 0,
    };
    p.skip_ws();
    if p.b.get(p.i) != Some(&b'{') {
        return Err(format!(
            "line does not start with an object at byte {}",
            p.i
        ));
    }
    p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing content at byte {}", p.i));
    }
    Ok(())
}

/// Every `"kind"` value the metrics/log JSONL schema defines. The strict
/// validator ([`validate_metrics_line`]) rejects anything else, so schema
/// drift — a typo'd kind, a new emitter nobody documented — fails CI
/// instead of silently passing as "some JSON object".
pub const KNOWN_KINDS: &[&str] = &[
    "meta", "counter", "gauge", "hist", "span", "event", "access", "slow", "flight",
];

/// [`validate_jsonl_line`] plus the schema check: the object must carry a
/// string `"kind"` field whose value is one of [`KNOWN_KINDS`].
pub fn validate_metrics_line(line: &str) -> Result<(), String> {
    validate_jsonl_line(line)?;
    let v = parse_json(line)?;
    match v.get("kind").and_then(JsonValue::as_str) {
        None => Err("object has no string \"kind\" field".to_owned()),
        Some(kind) if KNOWN_KINDS.contains(&kind) => Ok(()),
        Some(kind) => Err(format!(
            "unknown kind {kind:?} (expected one of {})",
            KNOWN_KINDS.join(", ")
        )),
    }
}

/// Nesting depth cap: deeper input is rejected rather than risking a
/// stack overflow on adversarial wire data.
const MAX_DEPTH: usize = 128;

struct Parser<'s> {
    src: &'s str,
    b: &'s [u8],
    i: usize,
    depth: usize,
}

impl<'s> Parser<'s> {
    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.expect("true", JsonValue::Bool(true)),
            Some(b'f') => self.expect("false", JsonValue::Bool(false)),
            Some(b'n') => self.expect("null", JsonValue::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(format!("unexpected byte {c:#04x} at {}", self.i)),
            None => Err(format!("unexpected end of input at {}", self.i)),
        }
    }

    fn expect(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.i))
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.i
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.enter()?;
        self.i += 1; // past '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.b.get(self.i) != Some(&b'"') {
                return Err(format!("expected object key at byte {}", self.i));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(format!("expected `:` at byte {}", self.i));
            }
            self.i += 1;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.enter()?;
        self.i += 1; // past '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.i += 1; // past opening quote
        let mut out = String::new();
        let mut run = self.i; // start of the current escape-free run
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    out.push_str(&self.src[run..self.i]);
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.src[run..self.i]);
                    match self.b.get(self.i + 1) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hi = self.hex4(self.i + 2)?;
                            self.i += 6;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a low surrogate must follow.
                                if self.b.get(self.i..self.i + 2) != Some(br"\u") {
                                    return Err(format!(
                                        "unpaired surrogate at byte {}",
                                        self.i - 6
                                    ));
                                }
                                let lo = self.hex4(self.i + 2)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(format!(
                                        "unpaired surrogate at byte {}",
                                        self.i - 6
                                    ));
                                }
                                self.i += 6;
                                let scalar = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(scalar).expect("valid surrogate pair")
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(format!("unpaired surrogate at byte {}", self.i - 6));
                            } else {
                                char::from_u32(hi).expect("BMP scalar")
                            };
                            out.push(c);
                            run = self.i;
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 2;
                    run = self.i;
                }
                Some(&c) if c < 0x20 => {
                    return Err(format!(
                        "raw control character {c:#04x} in string at byte {}",
                        self.i
                    ))
                }
                Some(_) => self.i += 1,
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self
            .b
            .get(at..at + 4)
            .ok_or_else(|| "truncated \\u escape".to_owned())?;
        if !hex.iter().all(u8::is_ascii_hexdigit) {
            return Err(format!("bad \\u escape at byte {}", at.saturating_sub(2)));
        }
        u32::from_str_radix(&self.src[at..at + 4], 16)
            .map_err(|_| format!("bad \\u escape at byte {at}"))
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.i;
        let mut integral = true;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        if !self.digits() {
            return Err(format!("malformed number at byte {start}"));
        }
        if self.b.get(self.i) == Some(&b'.') {
            integral = false;
            self.i += 1;
            if !self.digits() {
                return Err(format!("malformed fraction at byte {}", self.i));
            }
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            integral = false;
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !self.digits() {
                return Err(format!("malformed exponent at byte {}", self.i));
            }
        }
        let text = &self.src[start..self.i];
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::U64(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| format!("malformed number at byte {start}"))
    }

    fn digits(&mut self) -> bool {
        let start = self.i;
        while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        self.i > start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_pathological_names() {
        assert_eq!(escaped(r#"a"b"#), r#""a\"b""#);
        assert_eq!(escaped(r"back\slash"), r#""back\\slash""#);
        assert_eq!(escaped("line\nbreak"), r#""line\nbreak""#);
        assert_eq!(escaped("tab\there"), r#""tab\there""#);
        assert_eq!(escaped("\u{01}"), "\"\\u0001\"");
        // Non-ASCII (the analysis prints names like `x ∈ pts(y)`) passes
        // through unescaped, as RFC 8259 allows.
        assert_eq!(escaped("v ∈ pts"), "\"v ∈ pts\"");
    }

    #[test]
    fn escaped_strings_validate() {
        for name in [r#"a"b"#, r"c\d", "line\nbreak", "v ∈ pts", "\u{07}"] {
            let line = format!("{{{}:{}}}", escaped("k"), escaped(name));
            validate_jsonl_line(&line).unwrap_or_else(|e| panic!("{name:?}: {e}"));
        }
    }

    #[test]
    fn value_tree_serializes_and_validates() {
        let v = JsonValue::Object(vec![
            ("kind".to_owned(), JsonValue::str("counters")),
            ("n".to_owned(), JsonValue::U64(3)),
            ("rate".to_owned(), JsonValue::F64(0.5)),
            ("nan".to_owned(), JsonValue::F64(f64::NAN)),
            (
                "items".to_owned(),
                JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
        ]);
        let line = v.to_string();
        assert_eq!(
            line,
            r#"{"kind":"counters","n":3,"rate":0.5,"nan":null,"items":[true,null]}"#
        );
        validate_jsonl_line(&line).expect("valid");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_jsonl_line("").is_err());
        assert!(
            validate_jsonl_line("[1,2]").is_err(),
            "top level must be an object"
        );
        assert!(validate_jsonl_line("{\"a\":1} trailing").is_err());
        assert!(validate_jsonl_line("{\"a\":}").is_err());
        assert!(validate_jsonl_line("{\"a\":1,}").is_err());
        assert!(validate_jsonl_line("{\"a\":01e}").is_err());
        assert!(validate_jsonl_line("{\"a\":\"unterminated}").is_err());
        assert!(validate_jsonl_line("{\"a\":\"bad\\q\"}").is_err());
    }

    #[test]
    fn validator_accepts_numbers_and_nesting() {
        for line in [
            "{}",
            "{ \"a\" : -1.5e-3 }",
            "{\"a\":{\"b\":[{},{\"c\":null}]}}",
            "{\"∈\":\"∈\"}",
        ] {
            validate_jsonl_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn reader_round_trips_writer_output() {
        let v = JsonValue::Object(vec![
            ("op".to_owned(), JsonValue::str("query")),
            ("name".to_owned(), JsonValue::str("v ∈ \"pts\"\n")),
            ("budget".to_owned(), JsonValue::U64(u64::MAX)),
            ("rate".to_owned(), JsonValue::F64(-1.5e-3)),
            (
                "flags".to_owned(),
                JsonValue::Array(vec![JsonValue::Bool(false), JsonValue::Null]),
            ),
            ("empty".to_owned(), JsonValue::Object(vec![])),
        ]);
        let parsed = parse_json(&v.to_string()).expect("round-trip parses");
        assert_eq!(parsed, v);
    }

    #[test]
    fn reader_decodes_escapes_and_surrogates() {
        let v = parse_json(r#"{"k":"a\nb\t\u0041\ud83d\ude00\\"}"#).expect("parses");
        assert_eq!(v.get("k").and_then(JsonValue::as_str), Some("a\nb\tA😀\\"));
        assert!(parse_json(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse_json(r#""\ude00""#).is_err(), "lone low surrogate");
        assert!(parse_json(r#""\ud83dx""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn reader_number_variants() {
        assert_eq!(parse_json("0"), Ok(JsonValue::U64(0)));
        assert_eq!(
            parse_json("18446744073709551615"),
            Ok(JsonValue::U64(u64::MAX))
        );
        assert_eq!(parse_json("-3"), Ok(JsonValue::F64(-3.0)));
        assert_eq!(parse_json("2.5"), Ok(JsonValue::F64(2.5)));
        assert_eq!(parse_json("1e3"), Ok(JsonValue::F64(1000.0)));
        // Past u64 range, integers degrade to floats rather than failing.
        assert!(matches!(
            parse_json("98446744073709551615"),
            Ok(JsonValue::F64(_))
        ));
    }

    #[test]
    fn reader_rejects_trailing_and_deep_nesting() {
        assert!(parse_json("{} {}").is_err());
        assert!(parse_json("").is_err());
        let deep = format!("{}{}", "[".repeat(200), "]".repeat(200));
        let e = parse_json(&deep).expect_err("too deep");
        assert!(e.contains("nesting"), "{e}");
    }

    #[test]
    fn accessors_select_fields() {
        let v = parse_json(r#"{"s":"x","n":7,"b":true,"a":[1],"o":{"k":null}}"#).expect("parses");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert!(v.get("o").and_then(|o| o.get("k")).is_some());
        assert!(v.get("missing").is_none());
        assert!(JsonValue::Null.get("x").is_none());
        assert_eq!(v.as_object().map(<[_]>::len), Some(5));
    }
}
