//! Minimal hand-rolled JSON: escaping, a value tree, and a validator.
//!
//! The workspace has no serde, so this module provides just enough JSON
//! to export metrics: string escaping per RFC 8259, a [`JsonValue`] tree
//! with a `Display` serializer, and [`validate_jsonl_line`], a strict
//! little parser the CLI tests and CI smoke test use to prove that every
//! emitted line really is one standalone JSON object.

use std::fmt;

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters as `\u00XX`; non-ASCII passes through as UTF-8,
/// which RFC 8259 permits without escaping).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `s` escaped and wrapped in quotes.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// A JSON value tree. Objects keep insertion order (metric names are
/// pre-sorted by the registry).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (counters, counts).
    U64(u64),
    /// Floating point; non-finite values serialize as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::U64(n) => write!(f, "{n}"),
            JsonValue::F64(x) if x.is_finite() => write!(f, "{x}"),
            JsonValue::F64(_) => f.write_str("null"),
            JsonValue::Str(s) => f.write_str(&escaped(s)),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escaped(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Checks that `line` is exactly one JSON *object* (the JSONL contract):
/// a strict recursive-descent parse with nothing but whitespace after the
/// closing brace. Returns a description of the first violation.
pub fn validate_jsonl_line(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut pos = skip_ws(bytes, 0);
    if bytes.get(pos) != Some(&b'{') {
        return Err(format!("line does not start with an object at byte {pos}"));
    }
    pos = parse_value(bytes, pos)?;
    pos = skip_ws(bytes, pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while matches!(b.get(i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
        i += 1;
    }
    i
}

fn parse_value(b: &[u8], i: usize) -> Result<usize, String> {
    let i = skip_ws(b, i);
    match b.get(i) {
        Some(b'{') => parse_object(b, i),
        Some(b'[') => parse_array(b, i),
        Some(b'"') => parse_string(b, i),
        Some(b't') => expect(b, i, "true"),
        Some(b'f') => expect(b, i, "false"),
        Some(b'n') => expect(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, i),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {i}")),
        None => Err(format!("unexpected end of input at {i}")),
    }
}

fn expect(b: &[u8], i: usize, word: &str) -> Result<usize, String> {
    if b[i..].starts_with(word.as_bytes()) {
        Ok(i + word.len())
    } else {
        Err(format!("expected `{word}` at byte {i}"))
    }
}

fn parse_object(b: &[u8], mut i: usize) -> Result<usize, String> {
    i += 1; // past '{'
    i = skip_ws(b, i);
    if b.get(i) == Some(&b'}') {
        return Ok(i + 1);
    }
    loop {
        i = skip_ws(b, i);
        if b.get(i) != Some(&b'"') {
            return Err(format!("expected object key at byte {i}"));
        }
        i = parse_string(b, i)?;
        i = skip_ws(b, i);
        if b.get(i) != Some(&b':') {
            return Err(format!("expected `:` at byte {i}"));
        }
        i = parse_value(b, i + 1)?;
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return Ok(i + 1),
            _ => return Err(format!("expected `,` or `}}` at byte {i}")),
        }
    }
}

fn parse_array(b: &[u8], mut i: usize) -> Result<usize, String> {
    i += 1; // past '['
    i = skip_ws(b, i);
    if b.get(i) == Some(&b']') {
        return Ok(i + 1);
    }
    loop {
        i = parse_value(b, i)?;
        i = skip_ws(b, i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b']') => return Ok(i + 1),
            _ => return Err(format!("expected `,` or `]` at byte {i}")),
        }
    }
}

fn parse_string(b: &[u8], mut i: usize) -> Result<usize, String> {
    i += 1; // past opening quote
    while let Some(&c) = b.get(i) {
        match c {
            b'"' => return Ok(i + 1),
            b'\\' => match b.get(i + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                Some(b'u') => {
                    let hex = b.get(i + 2..i + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {i}"));
                    }
                    i += 6;
                }
                _ => return Err(format!("bad escape at byte {i}")),
            },
            c if c < 0x20 => {
                return Err(format!(
                    "raw control character {c:#04x} in string at byte {i}"
                ))
            }
            _ => i += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(b: &[u8], mut i: usize) -> Result<usize, String> {
    let start = i;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    let digits = |b: &[u8], mut i: usize| {
        let s = i;
        while b.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
        (i, i > s)
    };
    let (ni, any) = digits(b, i);
    if !any {
        return Err(format!("malformed number at byte {start}"));
    }
    i = ni;
    if b.get(i) == Some(&b'.') {
        let (ni, any) = digits(b, i + 1);
        if !any {
            return Err(format!("malformed fraction at byte {i}"));
        }
        i = ni;
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        let (ni, any) = digits(b, i);
        if !any {
            return Err(format!("malformed exponent at byte {i}"));
        }
        i = ni;
    }
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_pathological_names() {
        assert_eq!(escaped(r#"a"b"#), r#""a\"b""#);
        assert_eq!(escaped(r"back\slash"), r#""back\\slash""#);
        assert_eq!(escaped("line\nbreak"), r#""line\nbreak""#);
        assert_eq!(escaped("tab\there"), r#""tab\there""#);
        assert_eq!(escaped("\u{01}"), "\"\\u0001\"");
        // Non-ASCII (the analysis prints names like `x ∈ pts(y)`) passes
        // through unescaped, as RFC 8259 allows.
        assert_eq!(escaped("v ∈ pts"), "\"v ∈ pts\"");
    }

    #[test]
    fn escaped_strings_validate() {
        for name in [r#"a"b"#, r"c\d", "line\nbreak", "v ∈ pts", "\u{07}"] {
            let line = format!("{{{}:{}}}", escaped("k"), escaped(name));
            validate_jsonl_line(&line).unwrap_or_else(|e| panic!("{name:?}: {e}"));
        }
    }

    #[test]
    fn value_tree_serializes_and_validates() {
        let v = JsonValue::Object(vec![
            ("kind".to_owned(), JsonValue::str("counters")),
            ("n".to_owned(), JsonValue::U64(3)),
            ("rate".to_owned(), JsonValue::F64(0.5)),
            ("nan".to_owned(), JsonValue::F64(f64::NAN)),
            (
                "items".to_owned(),
                JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
        ]);
        let line = v.to_string();
        assert_eq!(
            line,
            r#"{"kind":"counters","n":3,"rate":0.5,"nan":null,"items":[true,null]}"#
        );
        validate_jsonl_line(&line).expect("valid");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_jsonl_line("").is_err());
        assert!(
            validate_jsonl_line("[1,2]").is_err(),
            "top level must be an object"
        );
        assert!(validate_jsonl_line("{\"a\":1} trailing").is_err());
        assert!(validate_jsonl_line("{\"a\":}").is_err());
        assert!(validate_jsonl_line("{\"a\":1,}").is_err());
        assert!(validate_jsonl_line("{\"a\":01e}").is_err());
        assert!(validate_jsonl_line("{\"a\":\"unterminated}").is_err());
        assert!(validate_jsonl_line("{\"a\":\"bad\\q\"}").is_err());
    }

    #[test]
    fn validator_accepts_numbers_and_nesting() {
        for line in [
            "{}",
            "{ \"a\" : -1.5e-3 }",
            "{\"a\":{\"b\":[{},{\"c\":null}]}}",
            "{\"∈\":\"∈\"}",
        ] {
            validate_jsonl_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }
}
