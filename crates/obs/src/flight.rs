//! Deduction flight recorder — a bounded, lock-free ring of structured
//! engine events.
//!
//! The demand engine emits one [`FlightEvent`] per interesting scheduling
//! decision (goal activated, watcher blocked on a subgoal, goal resumed
//! after budget exhaustion, goal completed, memo hit, cycle merged, and a
//! *sampled* stream of rule firings). The ring is fixed-size: when it
//! fills, the oldest events are overwritten first and the exact number of
//! overwritten events is reported by [`FlightSnapshot::dropped`], so a
//! post-hoc reconstruction always knows how much of the flight it is
//! missing.
//!
//! # Design
//!
//! Each slot is a tiny seqlock: a sequence word plus two data words.
//! A writer claims a slot by a single `fetch_add` on the head counter —
//! the claimed absolute index *is* the event's logical timestamp — then
//! publishes `2·i + 1` (odd: write in progress), the payload, and finally
//! `2·i + 2` (even: stable, encodes `i`). Readers skip slots whose
//! sequence is odd or changes underfoot, so a snapshot taken while the
//! engine is running simply has *gaps* instead of torn events — exactly
//! the tolerance the reconstruction layer is tested for.
//!
//! Slot storage is allocated lazily on the first recorded event, so the
//! hundreds of short-lived engines the test-suite creates pay only for a
//! [`OnceLock`] until they actually record something.
//!
//! Rule firings are orders of magnitude more frequent than structural
//! events, so they route through [`FlightRecorder::maybe_record_fire`],
//! which keeps every `sample`-th firing (stride sampling). Structural
//! events are always recorded. With the default stride the recorder is
//! cheap enough to leave on in production (the bench T9 table reports the
//! measured overhead).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The kind of a recorded engine event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlightEventKind {
    /// A goal was activated (tabled for the first time). `a` = goal index.
    Activated,
    /// A watcher was installed: the consumer goal now *blocks on* new
    /// elements of the producer. `a` = producer goal index, `b` =
    /// consumer goal index (`u32::MAX` when the consumer is not tabled
    /// yet).
    Blocked,
    /// A goal was re-queued because the budget ran out mid-drain; a later
    /// query resumes it. `a` = goal index.
    Resumed,
    /// A goal reached its final fixpoint. `a` = goal index, `b` = element
    /// count, `work` = attributed work ticks.
    Completed,
    /// A query or activation was answered from a memo table. `a` = goal
    /// index, `b` = 0 for the local table, 1 for the shared cross-worker
    /// table.
    MemoHit,
    /// A copy cycle was collapsed into one representative. `a` =
    /// representative goal index, `b` = component size.
    CycleMerged,
    /// A sampled rule firing. `a` = goal index being processed, `b` =
    /// watcher kind index, `work` = sampling stride (each recorded firing
    /// stands for `work` real ones).
    Fire,
    /// A scheduler frame quiesced and left the runnable set, waiting for
    /// a producer goal to publish new facts. `a` = frame slot, `b` =
    /// worker id. (Parallel queries only; slots are frame addresses, not
    /// engine goal indices.)
    Parked,
    /// A worker stole a runnable frame from another worker's deque. `a` =
    /// frame slot, `b` = thief worker id.
    Stolen,
    /// A parked frame was rescheduled because a goal it watches published
    /// new facts. `a` = frame slot, `b` = scheduling worker id.
    Woken,
}

impl FlightEventKind {
    /// Schema names, indexed by discriminant.
    pub const KIND_NAMES: [&'static str; 10] = [
        "activated",
        "blocked",
        "resumed",
        "completed",
        "memo_hit",
        "cycle_merged",
        "fire",
        "parked",
        "stolen",
        "woken",
    ];

    /// The event's schema name.
    pub fn as_str(self) -> &'static str {
        Self::KIND_NAMES[self as usize]
    }

    fn from_u32(v: u32) -> Option<Self> {
        match v {
            0 => Some(FlightEventKind::Activated),
            1 => Some(FlightEventKind::Blocked),
            2 => Some(FlightEventKind::Resumed),
            3 => Some(FlightEventKind::Completed),
            4 => Some(FlightEventKind::MemoHit),
            5 => Some(FlightEventKind::CycleMerged),
            6 => Some(FlightEventKind::Fire),
            7 => Some(FlightEventKind::Parked),
            8 => Some(FlightEventKind::Stolen),
            9 => Some(FlightEventKind::Woken),
            _ => None,
        }
    }
}

/// One recorded engine event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Logical timestamp: the event's absolute position in the recording
    /// order (0-based, monotone across the whole engine lifetime).
    pub seq: u64,
    /// What happened.
    pub kind: FlightEventKind,
    /// Primary operand — a goal index, meaning per [`FlightEventKind`].
    pub a: u32,
    /// Secondary operand, meaning per [`FlightEventKind`].
    pub b: u32,
    /// Work ticks attributed to this event (0 when not applicable).
    pub work: u32,
}

/// A point-in-time copy of the ring.
#[derive(Clone, Debug, Default)]
pub struct FlightSnapshot {
    /// Stable events, ascending by `seq`. May have gaps where a
    /// concurrent writer was mid-publish.
    pub events: Vec<FlightEvent>,
    /// Total events ever recorded (= the next event's `seq`).
    pub recorded: u64,
    /// Exactly how many of the oldest events the ring has overwritten:
    /// `recorded − min(recorded, capacity)`.
    pub dropped: u64,
}

/// Recorder configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightConfig {
    /// Ring capacity in events; rounded up to a power of two, minimum 8.
    pub capacity: usize,
    /// Fire-sampling stride: every `sample`-th rule firing is recorded
    /// (clamped to ≥ 1; structural events are never sampled).
    pub sample: u32,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 8192,
            sample: 64,
        }
    }
}

#[derive(Debug)]
struct Slot {
    /// 0 = never written; odd = write in progress; `2·i + 2` = slot holds
    /// the stable event with absolute index `i`.
    seq: AtomicU64,
    /// `kind << 32 | a`.
    kind_a: AtomicU64,
    /// `b << 32 | work`.
    b_work: AtomicU64,
}

/// The bounded lock-free event ring. Cheap to share (`Arc` it); writers
/// never block and never allocate past the one lazy slot-table init.
#[derive(Debug)]
pub struct FlightRecorder {
    config: FlightConfig,
    /// Total events ever recorded; the low bits index the ring.
    head: AtomicU64,
    /// Total rule firings offered to the sampler (recorded or not).
    fires_seen: AtomicU64,
    slots: OnceLock<Box<[Slot]>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(FlightConfig::default())
    }
}

impl FlightRecorder {
    /// A recorder with the given ring size and sampling stride.
    pub fn new(config: FlightConfig) -> Self {
        FlightRecorder {
            config,
            head: AtomicU64::new(0),
            fires_seen: AtomicU64::new(0),
            slots: OnceLock::new(),
        }
    }

    /// The effective ring capacity (power of two, ≥ 8).
    pub fn capacity(&self) -> usize {
        self.config.capacity.next_power_of_two().max(8)
    }

    /// The effective fire-sampling stride (≥ 1).
    pub fn sample_stride(&self) -> u32 {
        self.config.sample.max(1)
    }

    fn slots(&self) -> &[Slot] {
        self.slots.get_or_init(|| {
            (0..self.capacity())
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    kind_a: AtomicU64::new(0),
                    b_work: AtomicU64::new(0),
                })
                .collect()
        })
    }

    /// Records one event; returns its logical timestamp.
    pub fn record(&self, kind: FlightEventKind, a: u32, b: u32, work: u32) -> u64 {
        let slots = self.slots();
        let mask = slots.len() as u64 - 1;
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &slots[(i & mask) as usize];
        slot.seq.store(2 * i + 1, Ordering::Release);
        slot.kind_a
            .store(((kind as u64) << 32) | a as u64, Ordering::Release);
        slot.b_work
            .store(((b as u64) << 32) | work as u64, Ordering::Release);
        slot.seq.store(2 * i + 2, Ordering::Release);
        i
    }

    /// Offers one rule firing to the sampler; records a [`Fire`] event
    /// (with `work` = the stride, the number of real firings it stands
    /// for) every `sample`-th call. Returns `true` if recorded.
    ///
    /// [`Fire`]: FlightEventKind::Fire
    #[inline]
    pub fn maybe_record_fire(&self, goal: u32, watcher_kind: u32) -> bool {
        let stride = self.sample_stride() as u64;
        let n = self.fires_seen.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(stride) {
            return false;
        }
        self.record(
            FlightEventKind::Fire,
            goal,
            watcher_kind,
            self.sample_stride(),
        );
        true
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Total rule firings offered to the sampler.
    pub fn fires_seen(&self) -> u64 {
        self.fires_seen.load(Ordering::Relaxed)
    }

    /// Exact count of events overwritten so far (oldest-first).
    pub fn dropped(&self) -> u64 {
        let recorded = self.recorded();
        recorded - recorded.min(self.capacity() as u64)
    }

    /// Copies the stable contents of the ring. Safe concurrently with
    /// writers: slots mid-write (or overwritten between the sequence
    /// check and the payload read) are skipped, producing gaps rather
    /// than torn events. Events come back ascending by `seq`.
    pub fn snapshot(&self) -> FlightSnapshot {
        let recorded = self.recorded();
        let mut events = Vec::new();
        if let Some(slots) = self.slots.get() {
            let oldest = recorded - recorded.min(slots.len() as u64);
            for slot in slots.iter() {
                let seq0 = slot.seq.load(Ordering::Acquire);
                if seq0 == 0 || seq0 % 2 == 1 {
                    continue; // never written / write in progress
                }
                let i = seq0 / 2 - 1;
                if i < oldest {
                    continue; // stale beyond the live window
                }
                let kind_a = slot.kind_a.load(Ordering::Acquire);
                let b_work = slot.b_work.load(Ordering::Acquire);
                if slot.seq.load(Ordering::Acquire) != seq0 {
                    continue; // overwritten underfoot — tolerate the gap
                }
                let Some(kind) = FlightEventKind::from_u32((kind_a >> 32) as u32) else {
                    continue;
                };
                events.push(FlightEvent {
                    seq: i,
                    kind,
                    a: kind_a as u32,
                    b: (b_work >> 32) as u32,
                    work: b_work as u32,
                });
            }
        }
        events.sort_unstable_by_key(|e| e.seq);
        FlightSnapshot {
            events,
            recorded,
            dropped: recorded - recorded.min(self.capacity() as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(capacity: usize, sample: u32) -> FlightRecorder {
        FlightRecorder::new(FlightConfig { capacity, sample })
    }

    #[test]
    fn empty_snapshot_is_empty_and_exact() {
        let r = FlightRecorder::default();
        let snap = r.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.recorded, 0);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn records_in_order_with_logical_timestamps() {
        let r = tiny(16, 1);
        for k in 0..5u32 {
            let seq = r.record(FlightEventKind::Activated, k, 0, 0);
            assert_eq!(seq, k as u64, "claimed index is the timestamp");
        }
        let snap = r.snapshot();
        assert_eq!(snap.recorded, 5);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 5);
        for (i, e) in snap.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.a, i as u32);
            assert_eq!(e.kind, FlightEventKind::Activated);
        }
    }

    #[test]
    fn wrap_around_drops_oldest_first_with_exact_counter() {
        let r = tiny(8, 1);
        assert_eq!(r.capacity(), 8);
        for k in 0..20u32 {
            r.record(FlightEventKind::Fire, k, 0, 1);
        }
        let snap = r.snapshot();
        assert_eq!(snap.recorded, 20);
        assert_eq!(snap.dropped, 12, "exactly recorded − capacity dropped");
        assert_eq!(r.dropped(), 12);
        // The survivors are precisely the newest `capacity` events, in order.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two_with_floor() {
        assert_eq!(tiny(0, 1).capacity(), 8);
        assert_eq!(tiny(9, 1).capacity(), 16);
        assert_eq!(tiny(4096, 1).capacity(), 4096);
    }

    #[test]
    fn fire_sampling_keeps_every_nth() {
        let r = tiny(64, 4);
        let mut kept = 0;
        for i in 0..16u32 {
            if r.maybe_record_fire(i, 0) {
                kept += 1;
            }
        }
        assert_eq!(kept, 4, "stride 4 keeps every 4th of 16");
        assert_eq!(r.fires_seen(), 16);
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 4);
        for e in &snap.events {
            assert_eq!(e.kind, FlightEventKind::Fire);
            assert_eq!(e.work, 4, "each kept firing stands for `stride` real ones");
        }
    }

    #[test]
    fn sample_stride_clamps_to_one() {
        let r = tiny(64, 0);
        assert_eq!(r.sample_stride(), 1);
        for i in 0..5u32 {
            assert!(r.maybe_record_fire(i, 0), "stride 1 keeps everything");
        }
        assert_eq!(r.snapshot().events.len(), 5);
    }

    #[test]
    fn event_payload_round_trips() {
        let r = tiny(8, 1);
        r.record(FlightEventKind::CycleMerged, 7, 3, 41);
        let e = r.snapshot().events[0];
        assert_eq!(e.kind, FlightEventKind::CycleMerged);
        assert_eq!(e.a, 7);
        assert_eq!(e.b, 3);
        assert_eq!(e.work, 41);
        assert_eq!(e.kind.as_str(), "cycle_merged");
    }

    #[test]
    fn kind_names_cover_all_discriminants() {
        for (i, name) in FlightEventKind::KIND_NAMES.iter().enumerate() {
            let k = FlightEventKind::from_u32(i as u32).expect("valid discriminant");
            assert_eq!(k.as_str(), *name);
        }
        assert!(FlightEventKind::from_u32(10).is_none());
    }

    #[test]
    fn concurrent_writers_produce_a_consistent_window() {
        let r = std::sync::Arc::new(tiny(64, 1));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..1000u32 {
                        r.record(FlightEventKind::Fire, t * 1000 + i, 0, 1);
                    }
                });
            }
        });
        assert_eq!(r.recorded(), 4000);
        assert_eq!(r.dropped(), 4000 - 64);
        let snap = r.snapshot();
        // Quiescent ring: every surviving slot is stable, so the snapshot
        // is the full newest-64 window, strictly ascending.
        assert_eq!(snap.events.len(), 64);
        for w in snap.events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        assert_eq!(snap.events.last().map(|e| e.seq), Some(3999));
    }

    #[test]
    fn snapshot_tolerates_gaps_from_in_progress_writes() {
        // Simulate a writer parked mid-publish by forcing a slot's seq odd.
        let r = tiny(8, 1);
        for k in 0..8u32 {
            r.record(FlightEventKind::Activated, k, 0, 0);
        }
        let slots = r.slots();
        slots[3].seq.store(2 * 3 + 1, Ordering::Release);
        let snap = r.snapshot();
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 4, 5, 6, 7], "gap where the write hangs");
        assert_eq!(snap.recorded, 8, "recorded counter unaffected by the gap");
    }
}
