//! Named monotonic counters, gauges, and histograms.
//!
//! A [`Registry`] maps names to [`Counter`]/[`Gauge`]/[`Histogram`]
//! handles. Handles are `Arc` clones over atomics, so the hot path
//! (`counter.inc()`, `histogram.record(v)`) is relaxed atomic arithmetic
//! with no lock and no name lookup — callers resolve the handle once and
//! keep it. The registry itself is behind a mutex and is only touched on
//! registration and snapshot; those locks recover from poisoning
//! ([`lock_unpoisoned`]) so a thread that panics mid-snapshot cannot
//! wedge every later metrics export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::hist::Histogram;

/// Locks `m`, recovering from poisoning instead of panicking.
///
/// Sound for every map in this crate: registration inserts whole entries
/// (handles are just `Arc`s, never left half-built), and the profiler
/// tree tolerates a span stack abandoned by a panicking thread — see the
/// regression tests. A panic while holding one of these locks must wedge
/// only its own thread, not every later snapshot.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A monotonic event counter. Cloning shares the underlying cell.
///
/// Additions use wrapping arithmetic: past `u64::MAX` the counter wraps
/// to zero rather than panicking or saturating (matching
/// `AtomicU64::fetch_add`), which is the documented overflow behaviour.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter not registered anywhere (useful as a default).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping on overflow).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (set, not accumulated).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    hists: Mutex<BTreeMap<String, Histogram>>,
}

/// A registry of named counters, gauges, and histograms. Cloning is
/// cheap and shares the name space.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created (at zero) on first use. Repeated
    /// calls return handles to the same cell.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = lock_unpoisoned(&self.inner.counters);
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::default();
                map.insert(name.to_owned(), c.clone());
                c
            }
        }
    }

    /// The gauge named `name`, created (at zero) on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = lock_unpoisoned(&self.inner.gauges);
        match map.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Gauge::default();
                map.insert(name.to_owned(), g.clone());
                g
            }
        }
    }

    /// The histogram named `name`, created (empty) on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = lock_unpoisoned(&self.inner.hists);
        match map.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Histogram::default();
                map.insert(name.to_owned(), h.clone());
                h
            }
        }
    }

    /// A name-sorted snapshot of every counter.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let map = lock_unpoisoned(&self.inner.counters);
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// A name-sorted snapshot of every gauge.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        let map = lock_unpoisoned(&self.inner.gauges);
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Name-sorted handles to every registered histogram.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        let map = lock_unpoisoned(&self.inner.hists);
        map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// The current value of counter `name` (0 if it was never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        let map = lock_unpoisoned(&self.inner.counters);
        map.get(name).map_or(0, Counter::get)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_the_cell() {
        let reg = Registry::new();
        let a = reg.counter("demand.fires");
        let b = reg.counter("demand.fires");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.counter_value("demand.fires"), 3);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let reg = Registry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").add(4);
        let snap = reg.counters();
        assert_eq!(snap, vec![("alpha".to_owned(), 4), ("zeta".to_owned(), 1)]);
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let reg = Registry::new();
        let g = reg.gauge("program.nodes");
        g.set(10);
        g.set(7);
        assert_eq!(g.get(), 7);
        assert_eq!(reg.gauges(), vec![("program.nodes".to_owned(), 7)]);
    }

    #[test]
    fn counter_overflow_wraps() {
        let c = Counter::detached();
        c.add(u64::MAX);
        c.add(3);
        // fetch_add wraps: MAX + 3 ≡ 2 (mod 2^64).
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn histogram_handles_share_the_buckets() {
        let reg = Registry::new();
        let a = reg.histogram("server.latency.query_us");
        let b = reg.histogram("server.latency.query_us");
        a.record(10);
        b.record(30);
        let snap = reg.histograms();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, "server.latency.query_us");
        assert_eq!(snap[0].1.count(), 2);
        assert_eq!(snap[0].1.max(), 30);
    }

    #[test]
    fn poisoned_registry_recovers() {
        let reg = Registry::new();
        reg.counter("before").inc();
        reg.histogram("h").record(5);
        // A thread panics while holding each registration lock.
        for _ in 0..1 {
            let r = reg.clone();
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let _guard = r.inner.counters.lock().expect("not yet poisoned");
                panic!("died holding the counter map");
            }));
            let r = reg.clone();
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let _guard = r.inner.hists.lock().expect("not yet poisoned");
                panic!("died holding the hist map");
            }));
        }
        // Later registrations and snapshots recover instead of panicking.
        reg.counter("after").add(2);
        assert_eq!(reg.counter_value("before"), 1);
        assert_eq!(reg.counter_value("after"), 2);
        assert_eq!(reg.histograms()[0].1.count(), 1);
        assert_eq!(reg.counters().len(), 2);
    }

    #[test]
    fn counters_are_thread_safe() {
        let reg = Registry::new();
        let c = reg.counter("hits");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
