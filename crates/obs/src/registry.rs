//! Named monotonic counters and gauges.
//!
//! A [`Registry`] maps names to [`Counter`]/[`Gauge`] handles. Handles are
//! `Arc<AtomicU64>` clones, so the hot path (`counter.inc()`) is one
//! relaxed atomic add with no lock and no name lookup — callers resolve
//! the handle once and keep it. The registry itself is behind a mutex and
//! is only touched on registration and snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic event counter. Cloning shares the underlying cell.
///
/// Additions use wrapping arithmetic: past `u64::MAX` the counter wraps
/// to zero rather than panicking or saturating (matching
/// `AtomicU64::fetch_add`), which is the documented overflow behaviour.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter not registered anywhere (useful as a default).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping on overflow).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (set, not accumulated).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Stores `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
}

/// A registry of named counters and gauges. Cloning is cheap and shares
/// the name space.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created (at zero) on first use. Repeated
    /// calls return handles to the same cell.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("registry poisoned");
        match map.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::default();
                map.insert(name.to_owned(), c.clone());
                c
            }
        }
    }

    /// The gauge named `name`, created (at zero) on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("registry poisoned");
        match map.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Gauge::default();
                map.insert(name.to_owned(), g.clone());
                g
            }
        }
    }

    /// A name-sorted snapshot of every counter.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let map = self.inner.counters.lock().expect("registry poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// A name-sorted snapshot of every gauge.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        let map = self.inner.gauges.lock().expect("registry poisoned");
        map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// The current value of counter `name` (0 if it was never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        let map = self.inner.counters.lock().expect("registry poisoned");
        map.get(name).map_or(0, Counter::get)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_the_cell() {
        let reg = Registry::new();
        let a = reg.counter("demand.fires");
        let b = reg.counter("demand.fires");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.counter_value("demand.fires"), 3);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let reg = Registry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").add(4);
        let snap = reg.counters();
        assert_eq!(snap, vec![("alpha".to_owned(), 4), ("zeta".to_owned(), 1)]);
    }

    #[test]
    fn gauge_is_last_value_wins() {
        let reg = Registry::new();
        let g = reg.gauge("program.nodes");
        g.set(10);
        g.set(7);
        assert_eq!(g.get(), 7);
        assert_eq!(reg.gauges(), vec![("program.nodes".to_owned(), 7)]);
    }

    #[test]
    fn counter_overflow_wraps() {
        let c = Counter::detached();
        c.add(u64::MAX);
        c.add(3);
        // fetch_add wraps: MAX + 3 ≡ 2 (mod 2^64).
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn counters_are_thread_safe() {
        let reg = Registry::new();
        let c = reg.counter("hits");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
