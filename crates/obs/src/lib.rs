//! Zero-dependency observability for the `ddpa` workspace.
//!
//! Heintze & Tardieu's central empirical claim is that demand-driven
//! resolution does a small *fraction* of the exhaustive analysis's work.
//! This crate is the substrate that makes that claim visible: every layer
//! of the pipeline publishes named counters and hierarchical span timings
//! into a shared [`Registry`]/[`Profiler`] pair, and the results export as
//! human-readable trees or machine-readable JSONL.
//!
//! Everything here is hand-rolled on `std` alone (atomics, `Instant`,
//! manual JSON escaping) because the workspace builds with no external
//! dependencies.
//!
//! * [`Registry`] — named monotonic [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed [`Histogram`]s with cheap cloneable handles
//!   (`Arc`-shared atomics inside);
//! * [`Profiler`] — hierarchical RAII span timers aggregating into a
//!   per-phase profile tree (count, total and self time);
//! * [`JsonlSink`] — serializes counters, gauges, spans and ad-hoc events
//!   as one JSON object per line;
//! * [`Obs`] — the facade the analyses thread through their entry points;
//!   spans are no-ops unless profiling is switched on, so unprofiled runs
//!   pay one branch per span site.
//!
//! # Examples
//!
//! ```
//! use ddpa_obs::Obs;
//!
//! let obs = Obs::with_profiling();
//! let fires = obs.counter("demand.fires");
//! {
//!     let _solve = obs.span("solve");
//!     let _phase = obs.span("solve.propagate");
//!     fires.add(17);
//! }
//! assert_eq!(fires.get(), 17);
//! let tree = obs.profiler.snapshot();
//! assert_eq!(tree[0].name, "solve");
//! assert_eq!(tree[0].children[0].name, "solve.propagate");
//! ```

pub mod flight;
pub mod hist;
pub mod json;
pub mod profile;
pub mod registry;
pub mod sink;

pub use flight::{FlightConfig, FlightEvent, FlightEventKind, FlightRecorder, FlightSnapshot};
pub use hist::Histogram;
pub use json::{
    escape_into, escaped, parse_json, validate_jsonl_line, validate_metrics_line, JsonValue,
    KNOWN_KINDS,
};
pub use profile::{ProfileNode, Profiler, SpanGuard};
pub use registry::{Counter, Gauge, Registry};
pub use sink::JsonlSink;

/// The observability handle the analyses carry: a counter/gauge registry
/// plus an optional span profiler.
///
/// Cloning is cheap (two `Arc`s and a `bool`); clones share the same
/// registry and profile tree. Profiling defaults to *off*, in which case
/// [`Obs::span`] returns an inert guard without reading the clock or
/// taking a lock — the cost of an instrumented-but-unprofiled hot path is
/// one branch.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Named counters and gauges.
    pub registry: Registry,
    /// The span profile tree (only populated when profiling is on).
    pub profiler: Profiler,
    profiling: bool,
}

impl Obs {
    /// A fresh handle with profiling off.
    pub fn new() -> Self {
        Obs::default()
    }

    /// A fresh handle with span profiling on.
    pub fn with_profiling() -> Self {
        Obs {
            profiling: true,
            ..Obs::default()
        }
    }

    /// Enables or disables span profiling on this handle (counters are
    /// always live; they cost one relaxed atomic add).
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Whether spans are being timed.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(name)
    }

    /// Opens a timed span named `name`, nested under the currently open
    /// span. Returns an RAII guard; the time until the guard drops is
    /// recorded in the profile tree. Inert (no clock read, no lock) when
    /// profiling is off.
    pub fn span(&self, name: &str) -> SpanGuard {
        if self.profiling {
            self.profiler.enter(name)
        } else {
            SpanGuard::noop()
        }
    }
}

/// Opens a timed RAII span on an [`Obs`] handle: `let _g = span!(obs,
/// "solve.wave");`. Sugar for [`Obs::span`].
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        $obs.span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_obs_spans_are_inert() {
        let obs = Obs::new();
        {
            let _g = span!(obs, "nothing");
        }
        assert!(obs.profiler.snapshot().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::with_profiling();
        let clone = obs.clone();
        clone.counter("shared").add(5);
        assert_eq!(obs.counter("shared").get(), 5);
        {
            let _g = clone.span("phase");
        }
        assert_eq!(obs.profiler.snapshot()[0].name, "phase");
    }
}
