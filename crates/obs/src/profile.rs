//! Hierarchical RAII span profiling.
//!
//! A [`Profiler`] aggregates spans into a tree keyed by (parent, name):
//! entering `"solve.wave"` under an open `"solve"` span attributes the
//! elapsed time to the `solve → solve.wave` node. Each node records how
//! many times it was entered, its total wall time, and the portion spent
//! in child spans — so *self* time (total − children) is available per
//! phase, which is what a hot-path hunt actually needs.
//!
//! The tree is one logical stream: spans must nest like scopes (RAII
//! guards enforce this in straight-line code). Out-of-order drops are
//! tolerated defensively by unwinding the open-span stack to the guard's
//! node.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ddpa_support::stats::{fmt_count, fmt_duration};

use crate::registry::lock_unpoisoned;

#[derive(Debug)]
struct Node {
    name: String,
    parent: Option<usize>,
    children: Vec<usize>,
    count: u64,
    total: Duration,
    child_time: Duration,
}

#[derive(Debug, Default)]
struct Tree {
    nodes: Vec<Node>,
    /// Root-level children (nodes with no parent).
    roots: Vec<usize>,
    /// Indices of currently open spans, outermost first.
    stack: Vec<usize>,
}

impl Tree {
    /// Finds or creates the child of the innermost open span named `name`.
    fn child_named(&mut self, name: &str) -> usize {
        let parent = self.stack.last().copied();
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&i) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_owned(),
            parent,
            children: Vec::new(),
            count: 0,
            total: Duration::ZERO,
            child_time: Duration::ZERO,
        });
        match parent {
            Some(p) => self.nodes[p].children.push(i),
            None => self.roots.push(i),
        }
        i
    }

    fn close(&mut self, node: usize, elapsed: Duration) {
        // Unwind to the guard's node; ordinarily it is the top of stack.
        while let Some(top) = self.stack.pop() {
            if top == node {
                break;
            }
        }
        let n = &mut self.nodes[node];
        n.count += 1;
        n.total += elapsed;
        if let Some(p) = n.parent {
            self.nodes[p].child_time += elapsed;
        }
    }

    fn snapshot(&self, index: usize) -> ProfileNode {
        let n = &self.nodes[index];
        ProfileNode {
            name: n.name.clone(),
            count: n.count,
            total: n.total,
            self_time: n.total.saturating_sub(n.child_time),
            children: n.children.iter().map(|&c| self.snapshot(c)).collect(),
        }
    }
}

/// Aggregated statistics of one span node, with its nested children.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span name as passed to [`crate::Obs::span`].
    pub name: String,
    /// Number of times the span was entered (and closed).
    pub count: u64,
    /// Total wall time across all entries.
    pub total: Duration,
    /// Total minus time attributed to child spans.
    pub self_time: Duration,
    /// Child spans in first-entered order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// The node's dotted path elements flattened depth-first, each with
    /// its depth — handy for serialization.
    fn flatten_into<'a>(&'a self, depth: usize, out: &mut Vec<(usize, &'a ProfileNode)>) {
        out.push((depth, self));
        for c in &self.children {
            c.flatten_into(depth + 1, out);
        }
    }
}

/// The span aggregation tree. Cloning is cheap and shares the tree.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    tree: Arc<Mutex<Tree>>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Opens a span named `name` under the innermost open span and starts
    /// the clock. Prefer [`crate::Obs::span`], which skips this entirely
    /// when profiling is off.
    pub fn enter(&self, name: &str) -> SpanGuard {
        let node = {
            let mut tree = lock_unpoisoned(&self.tree);
            let node = tree.child_named(name);
            tree.stack.push(node);
            node
        };
        SpanGuard {
            profiler: Some(self.clone()),
            node,
            start: Instant::now(),
        }
    }

    /// A snapshot of the root spans (closed entries only; still-open spans
    /// contribute nothing until their guards drop).
    pub fn snapshot(&self) -> Vec<ProfileNode> {
        let tree = lock_unpoisoned(&self.tree);
        tree.roots.iter().map(|&r| tree.snapshot(r)).collect()
    }

    /// Renders the profile as an indented human-readable tree.
    pub fn render(&self) -> String {
        let roots = self.snapshot();
        let mut flat = Vec::new();
        for r in &roots {
            r.flatten_into(0, &mut flat);
        }
        let name_width = flat
            .iter()
            .map(|(d, n)| 2 * d + n.name.len())
            .max()
            .unwrap_or(0)
            .max(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>10}  {:>10}  {:>10}",
            "span", "count", "total", "self"
        );
        for (depth, n) in flat {
            let _ = writeln!(
                out,
                "{:indent$}{:<width$}  {:>10}  {:>10}  {:>10}",
                "",
                n.name,
                fmt_count(n.count),
                fmt_duration(n.total),
                fmt_duration(n.self_time),
                indent = 2 * depth,
                width = name_width - 2 * depth,
            );
        }
        out
    }
}

/// RAII guard returned by [`Profiler::enter`] / [`crate::Obs::span`].
/// Dropping it records the elapsed time. The inert variant (profiling
/// off) carries no profiler and never reads the clock.
#[derive(Debug)]
pub struct SpanGuard {
    profiler: Option<Profiler>,
    node: usize,
    start: Instant,
}

impl SpanGuard {
    /// A guard that records nothing on drop.
    pub fn noop() -> Self {
        // `Instant::now()` is not called on this path in release builds
        // worth worrying about: a dummy value is still required, and
        // `Instant` has no cheap constant constructor — but the noop guard
        // is only built once per *disabled* span site, where one clock read
        // versus zero is immaterial compared to lock + tree maintenance.
        static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
        SpanGuard {
            profiler: None,
            node: 0,
            start: *EPOCH.get_or_init(Instant::now),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(profiler) = self.profiler.take() {
            let elapsed = self.start.elapsed();
            let mut tree = lock_unpoisoned(&profiler.tree);
            tree.close(self.node, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_count() {
        let p = Profiler::new();
        for _ in 0..3 {
            let _outer = p.enter("outer");
            let _inner = p.enter("inner");
        }
        let snap = p.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].name, "outer");
        assert_eq!(snap[0].count, 3);
        assert_eq!(snap[0].children.len(), 1);
        assert_eq!(snap[0].children[0].name, "inner");
        assert_eq!(snap[0].children[0].count, 3);
    }

    #[test]
    fn self_time_excludes_children() {
        let p = Profiler::new();
        {
            let _outer = p.enter("outer");
            std::thread::sleep(Duration::from_millis(5));
            let inner = p.enter("inner");
            std::thread::sleep(Duration::from_millis(10));
            drop(inner);
        }
        let snap = p.snapshot();
        let outer = &snap[0];
        let inner = &outer.children[0];
        assert!(inner.total >= Duration::from_millis(10));
        assert!(outer.total >= inner.total);
        // Self time is total minus the child's contribution, so it must
        // not include the inner sleep.
        assert_eq!(outer.self_time, outer.total - inner.total);
        assert!(outer.self_time >= Duration::from_millis(5));
        assert!(outer.self_time < outer.total);
    }

    #[test]
    fn same_name_under_different_parents_is_distinct() {
        let p = Profiler::new();
        {
            let _a = p.enter("a");
            let _x = p.enter("x");
        }
        {
            let _b = p.enter("b");
            let _x = p.enter("x");
        }
        let snap = p.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].children[0].name, "x");
        assert_eq!(snap[1].children[0].name, "x");
        assert_eq!(snap[0].children[0].count, 1);
        assert_eq!(snap[1].children[0].count, 1);
    }

    #[test]
    fn out_of_order_drop_does_not_corrupt_the_stack() {
        let p = Profiler::new();
        let a = p.enter("a");
        let b = p.enter("b");
        drop(a); // unwinds past b
        drop(b); // already popped; must not panic
        let _c = p.enter("c");
        drop(_c);
        let snap = p.snapshot();
        assert_eq!(
            snap.iter().map(|n| n.name.as_str()).collect::<Vec<_>>(),
            ["a", "c"]
        );
    }

    #[test]
    fn panicking_span_holder_does_not_wedge_later_snapshots() {
        let p = Profiler::new();
        {
            let _warm = p.enter("healthy");
        }
        // A worker thread panics while holding an open span guard: the
        // guard's drop runs during unwind and takes the tree lock, so the
        // mutex ends up poisoned.
        let clone = p.clone();
        let worker = std::thread::spawn(move || {
            let _open = clone.enter("doomed");
            panic!("worker died mid-span");
        });
        assert!(worker.join().is_err(), "worker must have panicked");

        // Later use recovers instead of dying on a poisoned-lock expect.
        {
            let _after = p.enter("after");
        }
        let snap = p.snapshot();
        let names: Vec<&str> = snap.iter().map(|n| n.name.as_str()).collect();
        assert!(names.contains(&"healthy"), "got {names:?}");
        assert!(names.contains(&"after"), "got {names:?}");
        // The doomed span closed during unwind, so it is recorded too.
        assert!(names.contains(&"doomed"), "got {names:?}");
        assert!(!p.render().is_empty());
    }

    #[test]
    fn render_contains_all_span_names() {
        let p = Profiler::new();
        {
            let _s = p.enter("solve");
            let _w = p.enter("solve.wave");
        }
        let text = p.render();
        assert!(text.contains("solve"));
        assert!(text.contains("solve.wave"));
        assert!(text.contains("count"));
    }
}
