//! JSONL export: one JSON object per line.
//!
//! The schema (documented in `docs/OBSERVABILITY.md`) tags every line
//! with a `"kind"` field drawn from [`crate::json::KNOWN_KINDS`]:
//!
//! * `{"kind":"meta", ...}` — free-form run metadata;
//! * `{"kind":"counter","name":...,"value":...}` — one per counter;
//! * `{"kind":"gauge","name":...,"value":...}` — one per gauge;
//! * `{"kind":"hist","name":...,"count":...,"sum":...,"p50":...,
//!   "p90":...,"p99":...,"max":...}` — one per histogram, quantiles from
//!   the log-bucketed estimator in [`crate::Histogram`];
//! * `{"kind":"span","path":[...],"count":...,"total_ns":...,"self_ns":...}`
//!   — one per profile-tree node, `path` being the root-to-node names;
//! * `{"kind":"event", ...}` — ad-hoc engine events;
//! * `{"kind":"access", ...}` / `{"kind":"slow", ...}` — `ddpa-serve`
//!   request logs (see `docs/SERVER.md`);
//! * `{"kind":"flight","seq":...,"event":...,"goal":...,...}` — one per
//!   exported [`crate::FlightRecorder`] event (see `docs/OBSERVABILITY.md`).
//!
//! Keys are `&str` borrows serialized straight into the line buffer, so
//! per-line emission allocates no key `String`s — snapshot exports with
//! thousands of counters stay cheap.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::hist::Histogram;
use crate::json::{escaped, JsonValue};
use crate::profile::{ProfileNode, Profiler};
use crate::registry::Registry;

/// Writes JSON objects to `w`, one per line.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
    /// Reused per-line buffer; emission allocates only on growth.
    line: String,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonlSink {
            w,
            line: String::new(),
        }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.w
    }

    /// Writes one object line. Keys are borrowed — no per-field `String`
    /// allocation — and must not contain newlines (values are escaped by
    /// construction).
    pub fn emit(&mut self, kind: &str, fields: &[(&str, JsonValue)]) -> io::Result<()> {
        self.line.clear();
        self.line.push_str("{\"kind\":");
        self.line.push_str(&escaped(kind));
        for (key, value) in fields {
            self.line.push(',');
            self.line.push('"');
            crate::json::escape_into(&mut self.line, key);
            self.line.push_str("\":");
            let _ = write!(self.line, "{value}");
        }
        self.line.push('}');
        writeln!(self.w, "{}", self.line)
    }

    /// One `counter` line per registered counter, one `gauge` line per
    /// registered gauge, and one `hist` line per registered histogram,
    /// each group in name order.
    pub fn emit_registry(&mut self, registry: &Registry) -> io::Result<()> {
        for (name, value) in registry.counters() {
            self.emit(
                "counter",
                &[
                    ("name", JsonValue::Str(name)),
                    ("value", JsonValue::U64(value)),
                ],
            )?;
        }
        for (name, value) in registry.gauges() {
            self.emit(
                "gauge",
                &[
                    ("name", JsonValue::Str(name)),
                    ("value", JsonValue::U64(value)),
                ],
            )?;
        }
        for (name, hist) in registry.histograms() {
            self.emit_histogram(&name, &hist)?;
        }
        Ok(())
    }

    /// One `hist` line: sample count, sum, p50/p90/p99 estimates, and the
    /// exact maximum.
    pub fn emit_histogram(&mut self, name: &str, hist: &Histogram) -> io::Result<()> {
        self.emit(
            "hist",
            &[
                ("name", JsonValue::str(name)),
                ("count", JsonValue::U64(hist.count())),
                ("sum", JsonValue::U64(hist.sum())),
                ("p50", JsonValue::U64(hist.quantile(0.5))),
                ("p90", JsonValue::U64(hist.quantile(0.9))),
                ("p99", JsonValue::U64(hist.quantile(0.99))),
                ("max", JsonValue::U64(hist.max())),
            ],
        )
    }

    /// One `span` line per profile-tree node, depth-first.
    pub fn emit_profile(&mut self, profiler: &Profiler) -> io::Result<()> {
        fn walk<W: Write>(
            sink: &mut JsonlSink<W>,
            path: &mut Vec<String>,
            node: &ProfileNode,
        ) -> io::Result<()> {
            path.push(node.name.clone());
            sink.emit(
                "span",
                &[
                    (
                        "path",
                        JsonValue::Array(path.iter().map(|p| JsonValue::str(p.clone())).collect()),
                    ),
                    ("count", JsonValue::U64(node.count)),
                    ("total_ns", JsonValue::U64(node.total.as_nanos() as u64)),
                    ("self_ns", JsonValue::U64(node.self_time.as_nanos() as u64)),
                ],
            )?;
            for child in &node.children {
                walk(sink, path, child)?;
            }
            path.pop();
            Ok(())
        }
        let mut path = Vec::new();
        for root in profiler.snapshot() {
            walk(self, &mut path, &root)?;
        }
        Ok(())
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{validate_jsonl_line, validate_metrics_line};

    fn lines(buf: &[u8]) -> Vec<String> {
        String::from_utf8(buf.to_vec())
            .expect("utf8")
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn every_line_is_one_json_object() {
        let registry = Registry::new();
        registry.counter("demand.fires").add(12);
        registry.counter(r#"odd "name" \ with ∈"#).inc();
        registry.gauge("program.nodes").set(99);
        let profiler = Profiler::new();
        {
            let _a = profiler.enter("solve");
            let _b = profiler.enter("solve.wave");
        }

        let mut sink = JsonlSink::new(Vec::new());
        sink.emit("meta", &[("tool", JsonValue::str("ddpa"))])
            .expect("meta");
        sink.emit_registry(&registry).expect("registry");
        sink.emit_profile(&profiler).expect("profile");
        let buf = sink.into_inner();

        let lines = lines(&buf);
        // meta + 2 counters + 1 gauge + 2 spans.
        assert_eq!(lines.len(), 6);
        for line in &lines {
            validate_jsonl_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            validate_metrics_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(lines[0].contains("\"kind\":\"meta\""));
        assert!(lines
            .iter()
            .any(|l| l.contains("demand.fires") && l.contains(":12")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"kind\":\"span\"") && l.contains("solve.wave")));
    }

    #[test]
    fn hist_lines_carry_quantiles() {
        let registry = Registry::new();
        let h = registry.histogram("server.latency.query_us");
        for v in [10u64, 20, 30, 4000] {
            h.record(v);
        }
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit_registry(&registry).expect("registry");
        let buf = sink.into_inner();
        let lines = lines(&buf);
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        validate_metrics_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        let v = crate::json::parse_json(line).expect("valid");
        assert_eq!(
            v.get("kind").and_then(JsonValue::as_str),
            Some("hist"),
            "{line}"
        );
        assert_eq!(v.get("count").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(v.get("sum").and_then(JsonValue::as_u64), Some(4060));
        assert_eq!(v.get("max").and_then(JsonValue::as_u64), Some(4000));
        let p50 = v.get("p50").and_then(JsonValue::as_u64).expect("p50");
        let p99 = v.get("p99").and_then(JsonValue::as_u64).expect("p99");
        assert!((20..=30).contains(&p50), "{line}");
        assert!(p99 <= 4000 && p99 >= p50, "{line}");
    }

    #[test]
    fn emitted_bytes_match_the_owned_key_format() {
        // The borrowed-key emit path must produce byte-identical output
        // to building a JsonValue::Object with owned keys.
        let fields = [
            ("name", JsonValue::str("demand.fires")),
            ("value", JsonValue::U64(12)),
        ];
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit("counter", &fields).expect("emit");
        let got = String::from_utf8(sink.into_inner()).expect("utf8");
        let mut owned = vec![("kind".to_owned(), JsonValue::str("counter"))];
        owned.extend(fields.iter().map(|(k, v)| ((*k).to_owned(), v.clone())));
        let want = format!("{}\n", JsonValue::Object(owned));
        assert_eq!(got, want);
    }
}
