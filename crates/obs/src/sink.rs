//! JSONL export: one JSON object per line.
//!
//! The schema (documented in `docs/OBSERVABILITY.md`) tags every line
//! with a `"kind"` field:
//!
//! * `{"kind":"meta", ...}` — free-form run metadata;
//! * `{"kind":"counter","name":...,"value":...}` — one per counter;
//! * `{"kind":"gauge","name":...,"value":...}` — one per gauge;
//! * `{"kind":"span","path":[...],"count":...,"total_ns":...,"self_ns":...}`
//!   — one per profile-tree node, `path` being the root-to-node names;
//! * `{"kind":"event", ...}` — ad-hoc engine events.

use std::io::{self, Write};

use crate::json::JsonValue;
use crate::profile::{ProfileNode, Profiler};
use crate::registry::Registry;

/// Writes JSON objects to `w`, one per line.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.w
    }

    /// Writes one object line. `fields` must not contain newlines in keys
    /// (values are escaped by construction).
    pub fn emit(&mut self, kind: &str, fields: Vec<(String, JsonValue)>) -> io::Result<()> {
        let mut all = vec![("kind".to_owned(), JsonValue::str(kind))];
        all.extend(fields);
        writeln!(self.w, "{}", JsonValue::Object(all))
    }

    /// One `counter` line per registered counter and one `gauge` line per
    /// registered gauge, in name order.
    pub fn emit_registry(&mut self, registry: &Registry) -> io::Result<()> {
        for (name, value) in registry.counters() {
            self.emit(
                "counter",
                vec![
                    ("name".to_owned(), JsonValue::Str(name)),
                    ("value".to_owned(), JsonValue::U64(value)),
                ],
            )?;
        }
        for (name, value) in registry.gauges() {
            self.emit(
                "gauge",
                vec![
                    ("name".to_owned(), JsonValue::Str(name)),
                    ("value".to_owned(), JsonValue::U64(value)),
                ],
            )?;
        }
        Ok(())
    }

    /// One `span` line per profile-tree node, depth-first.
    pub fn emit_profile(&mut self, profiler: &Profiler) -> io::Result<()> {
        fn walk<W: Write>(
            sink: &mut JsonlSink<W>,
            path: &mut Vec<String>,
            node: &ProfileNode,
        ) -> io::Result<()> {
            path.push(node.name.clone());
            sink.emit(
                "span",
                vec![
                    (
                        "path".to_owned(),
                        JsonValue::Array(path.iter().map(|p| JsonValue::str(p.clone())).collect()),
                    ),
                    ("count".to_owned(), JsonValue::U64(node.count)),
                    (
                        "total_ns".to_owned(),
                        JsonValue::U64(node.total.as_nanos() as u64),
                    ),
                    (
                        "self_ns".to_owned(),
                        JsonValue::U64(node.self_time.as_nanos() as u64),
                    ),
                ],
            )?;
            for child in &node.children {
                walk(sink, path, child)?;
            }
            path.pop();
            Ok(())
        }
        let mut path = Vec::new();
        for root in profiler.snapshot() {
            walk(self, &mut path, &root)?;
        }
        Ok(())
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_jsonl_line;

    fn lines(buf: &[u8]) -> Vec<String> {
        String::from_utf8(buf.to_vec())
            .expect("utf8")
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn every_line_is_one_json_object() {
        let registry = Registry::new();
        registry.counter("demand.fires").add(12);
        registry.counter(r#"odd "name" \ with ∈"#).inc();
        registry.gauge("program.nodes").set(99);
        let profiler = Profiler::new();
        {
            let _a = profiler.enter("solve");
            let _b = profiler.enter("solve.wave");
        }

        let mut sink = JsonlSink::new(Vec::new());
        sink.emit("meta", vec![("tool".to_owned(), JsonValue::str("ddpa"))])
            .expect("meta");
        sink.emit_registry(&registry).expect("registry");
        sink.emit_profile(&profiler).expect("profile");
        let buf = sink.into_inner();

        let lines = lines(&buf);
        // meta + 2 counters + 1 gauge + 2 spans.
        assert_eq!(lines.len(), 6);
        for line in &lines {
            validate_jsonl_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(lines[0].contains("\"kind\":\"meta\""));
        assert!(lines
            .iter()
            .any(|l| l.contains("demand.fires") && l.contains(":12")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"kind\":\"span\"") && l.contains("solve.wave")));
    }
}
