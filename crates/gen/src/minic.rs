//! Structured MiniC program generator.
//!
//! Unlike [`crate::random`], this generator produces *source programs* and
//! pushes them through the full parse/check/lower pipeline shape real
//! inputs take: a layered call graph (layer *k* calls layer *k+1*), locals
//! whose addresses escape through stores, heap allocation, and a global
//! function-pointer dispatch table called indirectly — the construct the
//! paper's call-graph client exists for.

use ddpa_support::rng::Rng;

use ddpa_ir::ast::{BaseTy, Program, Ty};
use ddpa_ir::ProgramBuilder;

/// Parameters for [`generate_minic`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MiniCConfig {
    /// RNG seed.
    pub seed: u64,
    /// Call-graph depth.
    pub layers: usize,
    /// Functions per layer.
    pub funcs_per_layer: usize,
    /// Pointer locals per function.
    pub locals_per_func: usize,
    /// Size of the global function-pointer dispatch table (entries point
    /// at layer-1 functions; callers invoke them indirectly).
    pub fp_table: usize,
    /// Generate linked-list struct code in function bodies
    /// (field-sensitive workload).
    pub structs: bool,
}

impl MiniCConfig {
    /// A small default shape.
    pub fn sized(seed: u64, funcs: usize) -> Self {
        let layers = 3.max(funcs / 8).min(8);
        MiniCConfig {
            seed,
            layers,
            funcs_per_layer: funcs.div_ceil(layers).max(1),
            locals_per_func: 4,
            fp_table: (funcs / 4).max(1),
            structs: true,
        }
    }
}

fn fname(layer: usize, i: usize) -> String {
    format!("f_{layer}_{i}")
}

/// Generates a checked MiniC program.
///
/// # Examples
///
/// ```
/// use ddpa_gen::{generate_minic, MiniCConfig};
///
/// let program = generate_minic(&MiniCConfig::sized(1, 12));
/// ddpa_ir::check(&program).expect("generated programs always check");
/// let cp = ddpa_constraints::lower(&program).expect("and lower");
/// assert!(cp.indirect_callsites().len() > 0);
/// ```
pub fn generate_minic(config: &MiniCConfig) -> Program {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut b = ProgramBuilder::new();
    let ptr = Ty::ptr(BaseTy::Int, 1);
    let pptr = Ty::ptr(BaseTy::Int, 2);

    // Global objects, structs, and the function-pointer table.
    b.global("g0", Ty::INT);
    b.global("g1", Ty::INT);
    let list_sym = b.sym("List");
    let list_ty = Ty {
        base: BaseTy::Struct(list_sym),
        depth: 1,
    };
    if config.structs {
        b.struct_decl("List", &[("next", list_ty), ("data", ptr)]);
    }
    for t in 0..config.fp_table {
        b.global(&format!("fptab{t}"), Ty::ptr(BaseTy::Void, 1));
    }

    // Layered worker functions, bottom (deepest) layer first so direct
    // calls refer to already-generated names (forward refs are fine in
    // MiniC, but bottom-up keeps the shape obvious).
    for layer in (0..config.layers).rev() {
        for i in 0..config.funcs_per_layer {
            let name = fname(layer, i);
            let mut f = b.function(&name, ptr, &[("p0", ptr), ("p1", pptr)]);

            // Locals: an int object, pointer locals, a heap cell.
            f.decl("obj", Ty::INT, None);
            let addr = f.addr_of("obj");
            f.decl("l0", ptr, Some(addr));
            let m = f.malloc();
            f.decl("h", ptr, Some(m));
            for k in 1..config.locals_per_func {
                let init = match k % 3 {
                    0 => Some(f.var("l0")),
                    1 => Some(f.var("p0")),
                    _ => None,
                };
                f.decl(&format!("l{k}"), ptr, init);
            }

            // Escape a local through the out-parameter, and read it back.
            let l0 = f.var("l0");
            f.assign(1, "p1", l0);
            let back = f.load(1, "p1");
            f.decl("t", ptr, Some(back));

            // Build and walk a short linked list (field-sensitive flow).
            if config.structs && rng.gen_bool(0.6) {
                let m = f.malloc();
                f.decl("node", list_ty, Some(m));
                let m2 = f.malloc();
                f.decl("node2", list_ty, Some(m2));
                let n2 = f.var("node2");
                f.assign_field("node", true, "next", n2);
                let payload = f.var("t");
                f.assign_field("node", true, "data", payload);
                let start = f.var("node");
                f.decl("walk", list_ty, Some(start));
                let cond = ddpa_ir::ast::Cond {
                    lhs: f.var("walk"),
                    rest: Some((ddpa_ir::ast::CmpOp::Ne, f.null())),
                };
                let got = f.field("walk", true, "data");
                let next = f.field("walk", true, "next");
                let body = ddpa_ir::ast::Stmt::Block(ddpa_ir::ast::Block {
                    stmts: vec![
                        ddpa_ir::ast::Stmt::Assign {
                            lhs: ddpa_ir::ast::Place {
                                derefs: 0,
                                name: f.sym("t"),
                                field: None,
                                span: ddpa_ir::token::Span::DUMMY,
                            },
                            rhs: got,
                            span: ddpa_ir::token::Span::DUMMY,
                        },
                        ddpa_ir::ast::Stmt::Assign {
                            lhs: ddpa_ir::ast::Place {
                                derefs: 0,
                                name: f.sym("walk"),
                                field: None,
                                span: ddpa_ir::token::Span::DUMMY,
                            },
                            rhs: next,
                            span: ddpa_ir::token::Span::DUMMY,
                        },
                    ],
                });
                f.stmt(ddpa_ir::ast::Stmt::While {
                    cond,
                    body: Box::new(body),
                    span: ddpa_ir::token::Span::DUMMY,
                });
            }

            // Call one or two functions from the next layer down.
            if layer + 1 < config.layers {
                for _ in 0..=rng.gen_range(0..2u8) {
                    let callee = fname(layer + 1, rng.gen_range(0..config.funcs_per_layer));
                    let a0 = f.var("t");
                    let a1 = f.var("p1");
                    let call = f.call(&callee, vec![a0, a1]);
                    f.assign(0, "t", call);
                }
            }

            // Occasionally dispatch through the global table.
            if config.fp_table > 0 && rng.gen_bool(0.5) {
                let t = rng.gen_range(0..config.fp_table);
                let a0 = f.var("h");
                let a1 = f.var("p1");
                let call = f.call_indirect(1, &format!("fptab{t}"), vec![a0, a1]);
                f.assign(0, "t", call);
            }

            // Return either the threaded value or the heap cell.
            let ret = if rng.gen_bool(0.5) {
                f.var("t")
            } else {
                f.var("h")
            };
            f.ret(Some(ret));
            f.finish();
        }
    }

    // main: fill the dispatch table with layer-1 functions (or layer-0 if
    // only one layer) and kick off layer 0.
    let table_layer = 1.min(config.layers - 1);
    let mut main = b.function("main", Ty::VOID, &[]);
    for t in 0..config.fp_table {
        let target = fname(table_layer, rng.gen_range(0..config.funcs_per_layer));
        let fref = main.var(&target);
        main.assign(0, &format!("fptab{t}"), fref);
    }
    main.decl("slot", ptr, None);
    let slot_addr = main.addr_of("slot");
    main.decl("out", pptr, Some(slot_addr));
    let seed_ptr = main.addr_of("g0");
    main.decl("start", ptr, Some(seed_ptr));
    for i in 0..config.funcs_per_layer.min(3) {
        let a0 = main.var("start");
        let a1 = main.var("out");
        let call = main.call(&fname(0, i), vec![a0, a1]);
        main.assign(0, "start", call);
    }
    main.finish();

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_source_checks_and_lowers() {
        for seed in 0..5 {
            let program = generate_minic(&MiniCConfig::sized(seed, 16));
            ddpa_ir::check(&program).unwrap_or_else(|e| panic!("seed {seed} failed check:\n{e}"));
            let cp = ddpa_constraints::lower(&program).expect("lowers");
            assert!(cp.funcs().len() >= 16);
            assert!(!cp.indirect_callsites().is_empty());
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_minic(&MiniCConfig::sized(9, 12));
        let b = generate_minic(&MiniCConfig::sized(9, 12));
        assert_eq!(ddpa_ir::pretty(&a), ddpa_ir::pretty(&b));
    }

    #[test]
    fn pretty_output_reparses() {
        let program = generate_minic(&MiniCConfig::sized(4, 12));
        let text = ddpa_ir::pretty(&program);
        let reparsed = ddpa_ir::parse(&text).expect("pretty output parses");
        ddpa_ir::check(&reparsed).expect("and checks");
        assert_eq!(ddpa_ir::pretty(&reparsed), text);
    }

    #[test]
    fn demand_matches_exhaustive_on_generated_source() {
        let program = generate_minic(&MiniCConfig::sized(2, 12));
        let cp = ddpa_constraints::lower(&program).expect("lowers");
        let oracle = ddpa_anders::solve(&cp);
        let mut engine = ddpa_demand::DemandEngine::new(&cp, ddpa_demand::DemandConfig::default());
        for cs in cp.callsites().indices() {
            let got = engine.call_targets(cs);
            assert!(got.resolved);
            assert_eq!(got.targets.as_slice(), oracle.call_targets(cs));
        }
    }
}
