//! Wide, embarrassingly-parallel constraint programs — the T10 workload.
//!
//! A single demand query is parallelizable only when its goal graph is
//! *wide*: the critical-path profile's `W/S` headroom (total work over
//! span) bounds the speedup any scheduler can extract. This generator
//! builds programs that maximize that headroom for one query: `chains`
//! independent copy chains, each seeded at its base with `objs_per_chain`
//! address-of constraints, plus one `hub` variable copying from every
//! chain's top.
//!
//! Demanding `pts(hub)` activates all chains at once; the chains share no
//! goals, so workers can deduce them concurrently while the sequential
//! engine walks them one after another. Expected headroom ≈ `chains`
//! (span = one chain, work = all of them).

use ddpa_constraints::{ConstraintBuilder, ConstraintProgram};
use ddpa_support::rng::Rng;

/// Parameters for [`generate_wide`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WideConfig {
    /// RNG seed; same seed → same program.
    pub seed: u64,
    /// Number of independent copy chains feeding the hub.
    pub chains: usize,
    /// Nominal chain length (each chain is jittered ±25%, clamped ≥ 2).
    pub chain_len: usize,
    /// Address-of seeds at each chain's base.
    pub objs_per_chain: usize,
}

impl WideConfig {
    /// A size knob: roughly `size` primitive constraints spread over
    /// 26-constraint chains (24 copies + 2 objects each).
    pub fn sized(seed: u64, size: usize) -> Self {
        WideConfig {
            seed,
            chains: (size / 26).max(2),
            chain_len: 24,
            objs_per_chain: 2,
        }
    }
}

/// Generates a wide (high `W/S`) program from `config`.
///
/// # Examples
///
/// ```
/// use ddpa_gen::{generate_wide, WideConfig};
///
/// let cp = generate_wide(&WideConfig::sized(7, 260));
/// let hub = cp.node_ids().find(|&n| cp.display_node(n) == "hub");
/// assert!(hub.is_some(), "the hub joins every chain");
/// ```
pub fn generate_wide(config: &WideConfig) -> ConstraintProgram {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut b = ConstraintBuilder::new();
    let hub = b.var("hub");
    let nominal = config.chain_len.max(2);
    for c in 0..config.chains.max(1) {
        // Jitter the lengths so no two workers' chains finish in lockstep.
        let len = (nominal * 3 / 4 + rng.gen_range(0..(nominal / 2).max(1))).max(2);
        let base = b.var(&format!("c{c}_v0"));
        for j in 0..config.objs_per_chain.max(1) {
            let o = b.var(&format!("c{c}_obj{j}"));
            b.addr_of(base, o);
        }
        let mut prev = base;
        for i in 1..len {
            let v = b.var(&format!("c{c}_v{i}"));
            b.copy(v, prev);
            prev = v;
        }
        b.copy(hub, prev);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpa_demand::{DemandConfig, DemandEngine};

    #[test]
    fn deterministic_for_same_seed() {
        let c = WideConfig::sized(5, 500);
        assert_eq!(
            ddpa_constraints::print_constraints(&generate_wide(&c)),
            ddpa_constraints::print_constraints(&generate_wide(&c))
        );
    }

    #[test]
    fn hub_collects_every_chain_and_headroom_tracks_width() {
        let config = WideConfig {
            seed: 11,
            chains: 16,
            chain_len: 16,
            objs_per_chain: 2,
        };
        let cp = generate_wide(&config);
        let hub = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "hub")
            .expect("hub exists");
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let r = engine.points_to(hub);
        assert!(r.complete);
        assert_eq!(
            r.pts.len(),
            16 * 2,
            "pts(hub) is the union of every chain's objects"
        );
        // The whole point of the workload: one query, wide goal graph.
        let profile = engine.critical_path();
        assert!(
            profile.headroom >= config.chains as f64 / 2.0,
            "W/S = {:.1} should scale with the {} chains",
            profile.headroom,
            config.chains
        );
    }
}
