//! Cycle-dominated constraint programs — the T6 workload.
//!
//! Heintze & Tardieu's cycle-merging rule pays off when copy cycles carry
//! most of the value flow: without collapsing, a ring of `L` copy-related
//! pointers costs `L` rule firings *per flowing object*; collapsed, the
//! ring is one goal and each object is delivered once. This generator
//! builds programs where that regime dominates: `rings` copy rings of
//! `ring_len` variables, each seeded with `objs_per_ring` address-of
//! constraints spread around it, chained so ring `r` also receives
//! everything flowing through ring `r-1`, plus a few tail variables per
//! ring reading out of it (the query targets).
//!
//! Every ring member's final points-to set is the union of its ring's
//! objects and all upstream rings' objects — easy to predict, expensive to
//! deduce member-by-member, cheap once merged.

use ddpa_constraints::{ConstraintBuilder, ConstraintProgram, NodeId};
use ddpa_support::rng::Rng;

/// Parameters for [`generate_cyclic`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CyclicConfig {
    /// RNG seed; same seed → same program.
    pub seed: u64,
    /// Number of copy rings (chained: ring `r` feeds ring `r+1`).
    pub rings: usize,
    /// Variables per ring (clamped to ≥ 2).
    pub ring_len: usize,
    /// Address-of seeds spread around each ring.
    pub objs_per_ring: usize,
    /// Tail variables per ring (2-hop copy chains out of the ring).
    pub tails: usize,
}

impl CyclicConfig {
    /// A small/medium/large knob: `scale` rings of `4 × scale` variables.
    pub fn sized(seed: u64, scale: usize) -> Self {
        let scale = scale.max(2);
        CyclicConfig {
            seed,
            rings: scale,
            ring_len: 4 * scale,
            objs_per_ring: scale,
            tails: 2,
        }
    }
}

/// Generates a cycle-dominated program from `config`.
///
/// # Examples
///
/// ```
/// use ddpa_gen::{generate_cyclic, CyclicConfig};
///
/// let cp = generate_cyclic(&CyclicConfig::sized(7, 4));
/// assert!(cp.copies().len() >= 4 * 16, "rings dominate the program");
/// ```
pub fn generate_cyclic(config: &CyclicConfig) -> ConstraintProgram {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut b = ConstraintBuilder::new();
    let len = config.ring_len.max(2);

    let mut prev_ring: Option<Vec<NodeId>> = None;
    for r in 0..config.rings {
        let ring: Vec<NodeId> = (0..len).map(|i| b.var(&format!("ring{r}_v{i}"))).collect();
        for i in 1..len {
            b.copy(ring[i], ring[i - 1]);
        }
        b.copy(ring[0], ring[len - 1]);
        for j in 0..config.objs_per_ring {
            let o = b.var(&format!("ring{r}_obj{j}"));
            let pos = (j * len / config.objs_per_ring.max(1) + rng.gen_range(0..len)) % len;
            b.addr_of(ring[pos], o);
        }
        // Chain the rings so flow accumulates downstream.
        if let Some(prev) = &prev_ring {
            let from = rng.gen_range(0..len);
            let into = rng.gen_range(0..len);
            b.copy(ring[into], prev[from]);
        }
        for t in 0..config.tails {
            let mid = b.var(&format!("ring{r}_t{t}_mid"));
            let tail = b.var(&format!("ring{r}_tail{t}"));
            b.copy(mid, ring[rng.gen_range(0..len)]);
            b.copy(tail, mid);
        }
        prev_ring = Some(ring);
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpa_demand::{DemandConfig, DemandEngine};

    #[test]
    fn deterministic_for_same_seed() {
        let c = CyclicConfig::sized(3, 4);
        assert_eq!(
            ddpa_constraints::print_constraints(&generate_cyclic(&c)),
            ddpa_constraints::print_constraints(&generate_cyclic(&c))
        );
    }

    #[test]
    fn flow_accumulates_downstream() {
        let cp = generate_cyclic(&CyclicConfig::sized(9, 3));
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let node = |name: &str| {
            cp.node_ids()
                .find(|&n| cp.display_node(n) == name)
                .unwrap_or_else(|| panic!("no node named {name}"))
        };
        // Ring 0: its own 3 objects. Last ring: all 9.
        let first = engine.points_to(node("ring0_tail0"));
        assert!(first.complete);
        assert_eq!(first.pts.len(), 3);
        let last = engine.points_to(node("ring2_tail0"));
        assert!(last.complete);
        assert_eq!(last.pts.len(), 9);
    }

    #[test]
    fn collapsing_halves_work_at_least() {
        let cp = generate_cyclic(&CyclicConfig::sized(1, 6));
        // Query the pointer variables (the demand scenario); object nodes
        // exercise the ptb judgment, whose flow is one shared goal per
        // object and has no per-goal duplication for collapsing to save.
        let queries: Vec<_> = cp
            .node_ids()
            .filter(|&n| !cp.display_node(n).contains("obj"))
            .collect();
        let run = |config: DemandConfig| {
            let mut e = DemandEngine::new(&cp, config);
            let mut answers = Vec::new();
            for &n in &queries {
                let r = e.points_to(n);
                assert!(r.complete);
                answers.push(r.pts);
            }
            (e.stats(), answers)
        };
        let (on, ans_on) = run(DemandConfig::default());
        let (off, ans_off) = run(DemandConfig::default().without_cycle_collapsing());
        assert_eq!(ans_on, ans_off, "answers bit-identical");
        assert!(
            on.work * 2 <= off.work,
            "expected ≥2× work reduction on the T6 workload, got {} vs {}",
            on.work,
            off.work
        );
        assert!(on.fires * 2 <= off.fires);
    }
}
