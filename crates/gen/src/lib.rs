//! Deterministic workload generators and the synthetic benchmark suite.
//!
//! The original evaluation ran on a corpus of large C programs that is not
//! available here; this crate substitutes *generated* workloads whose
//! constraint-mix statistics span the same size range (10³–10⁶ primitive
//! assignments) and whose structure exercises the same analysis behaviours
//! (copy chains, load/store indirection, function-pointer tables, value
//! cycles). See `DESIGN.md` for the substitution argument.
//!
//! * [`random`] — seeded random constraint programs with a configurable
//!   mix and locality;
//! * [`cyclic`] — cycle-dominated programs (copy rings) for the online
//!   cycle-collapsing experiment (bench table T6);
//! * [`minic`] — structured MiniC source programs (layered call graphs,
//!   function-pointer dispatch tables), exercised through the full
//!   parse → check → lower pipeline;
//! * [`wide`] — wide independent-chain programs maximizing single-query
//!   parallel headroom (bench table T10);
//! * [`mod@suite`] — the named benchmark suite used by every experiment.
//!
//! All generators take explicit seeds; the same seed reproduces the same
//! program byte-for-byte.

pub mod cyclic;
pub mod minic;
pub mod random;
pub mod suite;
pub mod wide;

pub use cyclic::{generate_cyclic, CyclicConfig};
pub use minic::{generate_minic, MiniCConfig};
pub use random::{generate_random, RandomConfig};
pub use suite::{quick_suite, suite, Benchmark, WorkloadKind};
pub use wide::{generate_wide, WideConfig};
