//! The named synthetic benchmark suite.
//!
//! Eight programs spanning three orders of magnitude of constraint count,
//! standing in for the original paper's C corpus (see `DESIGN.md` for the
//! substitution rationale). Every experiment in `EXPERIMENTS.md` runs over
//! this suite; [`quick_suite`] is the small prefix used in tests and smoke
//! runs.

use ddpa_constraints::ConstraintProgram;

use crate::minic::{generate_minic, MiniCConfig};
use crate::random::{generate_random, RandomConfig};

/// How a benchmark's program is produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Random constraint program with the paper-like mix.
    Random(RandomConfig),
    /// Structured MiniC source through the full frontend.
    MiniC(MiniCConfig),
}

/// One named benchmark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Benchmark {
    /// Short name used in tables.
    pub name: &'static str,
    /// What the benchmark stresses.
    pub description: &'static str,
    /// Generator parameters.
    pub kind: WorkloadKind,
}

impl Benchmark {
    /// Generates the benchmark's constraint program.
    pub fn build(&self) -> ConstraintProgram {
        match &self.kind {
            WorkloadKind::Random(config) => generate_random(config),
            WorkloadKind::MiniC(config) => {
                let program = generate_minic(config);
                ddpa_constraints::lower(&program).expect("generated MiniC always lowers")
            }
        }
    }
}

fn random_bench(
    name: &'static str,
    description: &'static str,
    seed: u64,
    assignments: usize,
) -> Benchmark {
    Benchmark {
        name,
        description,
        kind: WorkloadKind::Random(RandomConfig::sized(seed, assignments)),
    }
}

/// The full benchmark suite, smallest first.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "minic-app",
            description: "structured MiniC app through the full frontend",
            kind: WorkloadKind::MiniC(MiniCConfig::sized(2001, 48)),
        },
        random_bench("syn-1k", "1k assignments, paper-like mix", 11, 1_000),
        random_bench("syn-4k", "4k assignments, paper-like mix", 12, 4_000),
        random_bench("syn-16k", "16k assignments, paper-like mix", 13, 16_000),
        random_bench("syn-40k", "40k assignments, paper-like mix", 14, 40_000),
        random_bench("syn-64k", "64k assignments, paper-like mix", 18, 64_000),
        random_bench("syn-100k", "100k assignments, paper-like mix", 15, 100_000),
        random_bench("syn-200k", "200k assignments, paper-like mix", 16, 200_000),
    ]
}

/// The quick subset (all programs under ~20k assignments).
pub fn quick_suite() -> Vec<Benchmark> {
    suite()
        .into_iter()
        .filter(|b| match &b.kind {
            WorkloadKind::Random(c) => c.assignments() <= 16_000,
            WorkloadKind::MiniC(_) => true,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_ordered_and_nonempty() {
        let s = suite();
        assert_eq!(s.len(), 8);
        assert_eq!(s[1].name, "syn-1k");
        let q = quick_suite();
        assert!(q.len() >= 3);
        assert!(q.len() < s.len());
    }

    #[test]
    fn quick_suite_builds_and_solves() {
        for bench in quick_suite() {
            let cp = bench.build();
            assert!(cp.num_constraints() > 0, "{} is empty", bench.name);
            let stats = ddpa_constraints::ProgramStats::of(&cp);
            assert!(
                stats.indirect_calls > 0,
                "{} has no indirect calls",
                bench.name
            );
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let s1 = suite()[1].build();
        let s2 = suite()[1].build();
        assert_eq!(s1.num_constraints(), s2.num_constraints());
        assert_eq!(
            ddpa_constraints::print_constraints(&s1),
            ddpa_constraints::print_constraints(&s2)
        );
    }
}
