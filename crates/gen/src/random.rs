//! Seeded random constraint programs.
//!
//! Real constraint graphs are *modular*: a C program's def-use structure is
//! mostly local to a function or file, with a sparse web of cross-module
//! flow. A uniformly random graph instead saturates — every pointer ends up
//! pointing at almost every object — which makes every analysis look
//! quadratic and nothing look like the paper's corpus.
//!
//! The generator therefore works in *communities* of [`BLOCK`] variables:
//! each constraint stays inside one community with high probability
//! ([`LOCALITY`]), and only occasionally links two communities. Objects
//! (address-taken locations) are the first quarter of each community.
//! Function pointers flow realistically: they are stored into dispatch-
//! table objects and loaded back at call sites, so resolving an indirect
//! call requires genuine load/store reasoning.

use ddpa_constraints::{ConstraintBuilder, ConstraintProgram, FuncId, NodeId};
use ddpa_support::rng::Rng;

/// Community size: constraints stay within one community of this many
/// variables with probability [`LOCALITY`].
pub const BLOCK: usize = 64;

/// Probability that a constraint's endpoints share a community.
pub const LOCALITY: f64 = 0.95;

/// Parameters for [`generate_random`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RandomConfig {
    /// RNG seed; same seed → same program.
    pub seed: u64,
    /// Number of named variables (rounded up to whole communities).
    pub vars: usize,
    /// `x = &o` count (objects are the first quarter of each community).
    pub addr_ofs: usize,
    /// `x = y` count.
    pub copies: usize,
    /// `x = *y` count.
    pub loads: usize,
    /// `*x = y` count.
    pub stores: usize,
    /// Number of functions (arities 0–3; each wires `ret ⊇ formalᵢ`).
    pub funcs: usize,
    /// Direct call sites.
    pub direct_calls: usize,
    /// Indirect call sites (loaded from dispatch tables).
    pub indirect_calls: usize,
    /// Dispatch-table slots seeded with function addresses.
    pub fp_seeds: usize,
    /// Copy cycles forced into the program (0 = none). Each ring threads
    /// [`RandomConfig::cycle_len`] existing variables of one community, so
    /// the cycles entangle with the surrounding flow — the workload for
    /// the engine's online cycle collapsing.
    pub copy_cycles: usize,
    /// Variables per forced copy cycle (clamped to `2..=BLOCK`).
    pub cycle_len: usize,
}

impl RandomConfig {
    /// A config producing roughly `assignments` primitive constraints with
    /// a realistic mix (15% addr-of, 55% copy, 18% load, 12% store) and
    /// call/function density proportional to program size.
    pub fn sized(seed: u64, assignments: usize) -> Self {
        let a = assignments;
        RandomConfig {
            seed,
            vars: a.max(2 * BLOCK),
            addr_ofs: a * 15 / 100,
            copies: a * 55 / 100,
            loads: a * 18 / 100,
            stores: a * 12 / 100,
            funcs: (a / 100).max(2),
            direct_calls: a / 40,
            indirect_calls: (a / 300).max(2),
            fp_seeds: (a / 150).max(2),
            copy_cycles: 0,
            cycle_len: 0,
        }
    }

    /// Forces `cycles` copy rings of `len` variables each into the
    /// program (see [`RandomConfig::copy_cycles`]).
    pub fn with_copy_cycles(mut self, cycles: usize, len: usize) -> Self {
        self.copy_cycles = cycles;
        self.cycle_len = len;
        self
    }

    /// Total primitive assignments this config requests (the generator
    /// adds a few more for function wiring and dispatch tables).
    pub fn assignments(&self) -> usize {
        self.addr_ofs + self.copies + self.loads + self.stores
    }
}

/// Generates a constraint program from `config`.
///
/// # Examples
///
/// ```
/// use ddpa_gen::{generate_random, RandomConfig};
///
/// let cp = generate_random(&RandomConfig::sized(42, 1000));
/// assert!(cp.num_constraints() >= 900);
/// assert!(!cp.indirect_callsites().is_empty());
/// ```
pub fn generate_random(config: &RandomConfig) -> ConstraintProgram {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut b = ConstraintBuilder::new();

    let num_blocks = config.vars.div_ceil(BLOCK).max(1);
    let num_vars = num_blocks * BLOCK;
    let vars: Vec<NodeId> = (0..num_vars).map(|i| b.var(&format!("v{i}"))).collect();

    // Pick a variable near `hint`'s community (or anywhere, rarely).
    let pick = |rng: &mut Rng, block_hint: usize| -> usize {
        let block = if rng.gen_bool(LOCALITY) {
            block_hint
        } else {
            rng.gen_range(0..num_blocks)
        };
        block * BLOCK + rng.gen_range(0..BLOCK)
    };
    // Pick an object (first quarter of a community).
    let pick_obj =
        |rng: &mut Rng, block: usize| -> usize { block * BLOCK + rng.gen_range(0..BLOCK / 4) };

    let funcs: Vec<FuncId> = (0..config.funcs)
        .map(|i| {
            let arity = rng.gen_range(0..=3usize);
            let f = b.func(&format!("f{i}"), arity);
            let info = b.func_info(f).clone();
            for formal in info.formals {
                b.copy(info.ret, formal);
            }
            f
        })
        .collect();

    for _ in 0..config.addr_ofs {
        let block = rng.gen_range(0..num_blocks);
        let dst = block * BLOCK + rng.gen_range(0..BLOCK);
        let obj = pick_obj(&mut rng, block);
        b.addr_of(vars[dst], vars[obj]);
    }
    for _ in 0..config.copies {
        let block = rng.gen_range(0..num_blocks);
        let dst = block * BLOCK + rng.gen_range(0..BLOCK);
        let src = pick(&mut rng, block);
        if dst != src {
            b.copy(vars[dst], vars[src]);
        }
    }
    for _ in 0..config.loads {
        let block = rng.gen_range(0..num_blocks);
        let dst = block * BLOCK + rng.gen_range(0..BLOCK);
        let ptr = pick(&mut rng, block);
        b.load(vars[dst], vars[ptr]);
    }
    for _ in 0..config.stores {
        let block = rng.gen_range(0..num_blocks);
        let ptr = block * BLOCK + rng.gen_range(0..BLOCK);
        let src = pick(&mut rng, block);
        b.store(vars[ptr], vars[src]);
    }

    if !funcs.is_empty() {
        // Dispatch tables: function addresses are stored into table
        // objects; call sites load them back out, possibly via a short
        // copy chain. Resolving such a call site exercises the full
        // load/store (ptb) machinery, as real function-pointer tables do.
        let num_tables = config.fp_seeds.div_ceil(4).max(1);
        let table_objs: Vec<NodeId> = (0..num_tables)
            .map(|t| b.var(&format!("dispatch_tbl{t}")))
            .collect();
        let table_ptrs: Vec<NodeId> = table_objs
            .iter()
            .enumerate()
            .map(|(t, &obj)| {
                let p = b.var(&format!("tblptr{t}"));
                b.addr_of(p, obj);
                p
            })
            .collect();
        for i in 0..config.fp_seeds {
            let f = funcs[(config.seed as usize + i * 7) % funcs.len()];
            let obj = b.func_info(f).object;
            let seed = b.var(&format!("fpseed{i}"));
            b.addr_of(seed, obj);
            let t = i % num_tables;
            b.store(table_ptrs[t], seed);
        }

        let make_args = |rng: &mut Rng, n: usize| {
            (0..n)
                .map(|_| {
                    if rng.gen_bool(0.8) {
                        Some(vars[rng.gen_range(0..num_vars)])
                    } else {
                        None
                    }
                })
                .collect::<Vec<_>>()
        };

        for _ in 0..config.direct_calls {
            let f = funcs[rng.gen_range(0..funcs.len())];
            let arity = b.func_info(f).formals.len();
            let args = make_args(&mut rng, arity);
            let ret = rng.gen_bool(0.6).then(|| vars[rng.gen_range(0..num_vars)]);
            let caller = funcs[rng.gen_range(0..funcs.len())];
            let cs = b.call_direct(f, args, ret);
            b.set_caller(cs, caller);
        }
        for i in 0..config.indirect_calls {
            // fp = *tblptr, then 0–2 copy hops.
            let t = rng.gen_range(0..num_tables);
            let mut fp = b.var(&format!("fpuse{i}"));
            b.load(fp, table_ptrs[t]);
            for hop in 0..rng.gen_range(0..=2u8) {
                let next = b.var(&format!("fpuse{i}_{hop}"));
                b.copy(next, fp);
                fp = next;
            }
            let nargs = rng.gen_range(0..=2usize);
            let args = make_args(&mut rng, nargs);
            let ret = rng.gen_bool(0.6).then(|| vars[rng.gen_range(0..num_vars)]);
            let caller = funcs[rng.gen_range(0..funcs.len())];
            let cs = b.call_indirect(fp, args, ret);
            b.set_caller(cs, caller);
        }
    }

    // Forced copy cycles, drawn last so configs without them reproduce
    // the exact pre-existing byte stream for a given seed.
    if config.copy_cycles > 0 {
        let len = config.cycle_len.clamp(2, BLOCK);
        for _ in 0..config.copy_cycles {
            let block = rng.gen_range(0..num_blocks);
            let off = rng.gen_range(0..BLOCK);
            let at = |k: usize| vars[block * BLOCK + (off + k) % BLOCK];
            for k in 1..len {
                b.copy(at(k), at(k - 1));
            }
            b.copy(at(0), at(len - 1));
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let config = RandomConfig::sized(7, 500);
        let a = generate_random(&config);
        let b = generate_random(&config);
        assert_eq!(
            ddpa_constraints::print_constraints(&a),
            ddpa_constraints::print_constraints(&b)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_random(&RandomConfig::sized(1, 500));
        let b = generate_random(&RandomConfig::sized(2, 500));
        assert_ne!(
            ddpa_constraints::print_constraints(&a),
            ddpa_constraints::print_constraints(&b)
        );
    }

    #[test]
    fn respects_requested_mix() {
        let config = RandomConfig::sized(3, 2000);
        let cp = generate_random(&config);
        // Loads include the fp-table loads at indirect call sites.
        assert!(cp.loads().len() >= config.loads);
        assert!(cp.stores().len() >= config.stores);
        assert!(cp.copies().len() >= config.copies * 9 / 10);
        assert_eq!(cp.indirect_callsites().len(), config.indirect_calls);
        assert!(cp.funcs().len() >= config.funcs);
    }

    #[test]
    fn aliasing_stays_bounded() {
        // The community structure must prevent saturation: average
        // points-to size should stay small as programs grow.
        for (size, limit) in [(1_000usize, 8.0f64), (8_000, 8.0)] {
            let cp = generate_random(&RandomConfig::sized(3, size));
            let sol = ddpa_anders::solve(&cp);
            let total: usize = cp.node_ids().map(|n| sol.pts(n).len()).sum();
            let avg = total as f64 / cp.num_nodes() as f64;
            assert!(
                avg < limit,
                "avg pts size {avg:.1} at {size} assignments — saturated"
            );
        }
    }

    #[test]
    fn forced_cycles_add_copies_without_perturbing_the_base() {
        let base = RandomConfig::sized(5, 800);
        let cyclic = RandomConfig::sized(5, 800).with_copy_cycles(4, 6);
        let a = generate_random(&base);
        let b = generate_random(&cyclic);
        // 4 rings of 6 vars = 24 extra copy edges (self-copies possible
        // only if dst == src, which the ring construction precludes).
        assert_eq!(b.copies().len(), a.copies().len() + 24);
        // The base program's constraints are a byte-for-byte prefix.
        let pa = ddpa_constraints::print_constraints(&a);
        let pb = ddpa_constraints::print_constraints(&b);
        assert_ne!(pa, pb);
        // Deterministic for the same config.
        assert_eq!(
            pb,
            ddpa_constraints::print_constraints(&generate_random(&cyclic))
        );
    }

    #[test]
    fn indirect_calls_need_real_resolution() {
        // Every indirect call's fp flows through a table store/load, so
        // resolving it takes more than a couple of rule firings.
        let cp = generate_random(&RandomConfig::sized(11, 2000));
        let mut engine = ddpa_demand::DemandEngine::new(
            &cp,
            ddpa_demand::DemandConfig::default().without_caching(),
        );
        for &cs in cp.indirect_callsites() {
            let r = engine.call_targets(cs);
            assert!(r.resolved);
            assert!(
                !r.targets.is_empty(),
                "table-loaded fp resolves to something"
            );
            assert!(r.work > 10, "resolution was trivial (work={})", r.work);
        }
    }
}
