//! Markdown rendering for the report binary.

use std::time::Duration;

use ddpa_support::stats::{fmt_count, fmt_duration};

/// Renders a Markdown table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in headers {
        out.push_str(&format!(" {h} |"));
    }
    out.push_str("\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Formats a duration for table cells.
pub fn dur(d: Duration) -> String {
    fmt_duration(d)
}

/// Formats a count for table cells.
pub fn count(n: usize) -> String {
    fmt_count(n as u64)
}

/// Formats a ratio like `12.3x`.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats a percentage like `97.4%`.
pub fn pct(p: f64) -> String {
    format!("{:.1}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_table() {
        let t = table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t, "| a | b |\n|---|---|\n| 1 | 2 |\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(count(1500), "1,500");
        assert_eq!(ratio(2.0), "2.00x");
        assert_eq!(pct(0.974), "97.4%");
        assert_eq!(dur(Duration::from_millis(5)), "5.00ms");
    }
}
