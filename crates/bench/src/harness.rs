//! Runners for every experiment (tables T1–T8, figures F1–F3, ablation A2).

use std::sync::Arc;
use std::time::{Duration, Instant};

use ddpa_anders::{worklist, SolverConfig};
use ddpa_callgraph::CallGraph;
use ddpa_constraints::{ConstraintProgram, NodeId, ProgramStats};
use ddpa_demand::{points_to_parallel, DemandConfig, DemandEngine, EngineStats, SharedMemo};
use ddpa_gen::Benchmark;
use ddpa_obs::Obs;
use ddpa_support::Summary;

/// All dereferenced pointers of `cp` (the dense query set).
pub fn deref_queries(cp: &ConstraintProgram) -> Vec<NodeId> {
    let mut q: Vec<NodeId> = cp
        .loads()
        .iter()
        .map(|l| l.ptr)
        .chain(cp.stores().iter().map(|s| s.ptr))
        .collect();
    q.sort_unstable();
    q.dedup();
    q
}

/// Function-pointer nodes of all indirect call sites (the paper's query set).
pub fn fp_queries(cp: &ConstraintProgram) -> Vec<NodeId> {
    let mut q: Vec<NodeId> = cp
        .indirect_callsites()
        .iter()
        .map(|&cs| match cp.callsite(cs).callee {
            ddpa_constraints::CalleeRef::Indirect(fp) => fp,
            ddpa_constraints::CalleeRef::Direct(_) => unreachable!("indirect sites only"),
        })
        .collect();
    q.sort_unstable();
    q.dedup();
    q
}

// ---------------------------------------------------------------------
// T1: benchmark characteristics
// ---------------------------------------------------------------------

/// One row of the program-characteristics table.
#[derive(Clone, Debug)]
pub struct T1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Program statistics.
    pub stats: ProgramStats,
}

/// Regenerates table T1.
pub fn run_t1(benches: &[Benchmark]) -> Vec<T1Row> {
    benches
        .iter()
        .map(|b| T1Row {
            name: b.name,
            stats: ProgramStats::of(&b.build()),
        })
        .collect()
}

// ---------------------------------------------------------------------
// T2 (+A1): exhaustive analysis times
// ---------------------------------------------------------------------

/// One row of the exhaustive-analysis table.
#[derive(Clone, Debug)]
pub struct T2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Worklist solver with cycle collapsing.
    pub time: Duration,
    /// Ablation (A1): cycle collapsing disabled.
    pub time_no_cycles: Duration,
    /// Work counters of the default configuration.
    pub stats: worklist::SolveStats,
    /// Total points-to set size (precision/size metric).
    pub total_pts: usize,
}

/// Regenerates table T2 and ablation A1.
pub fn run_t2(benches: &[Benchmark]) -> Vec<T2Row> {
    benches
        .iter()
        .map(|b| {
            let cp = b.build();
            let start = Instant::now();
            let (solution, stats) = worklist::solve(&cp, &SolverConfig::default());
            let time = start.elapsed();
            let start = Instant::now();
            let _ = worklist::solve(&cp, &SolverConfig::without_cycle_elimination());
            let time_no_cycles = start.elapsed();
            T2Row {
                name: b.name,
                time,
                time_no_cycles,
                stats,
                total_pts: solution.total_pts_size(&cp),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// T3: demand-driven call-graph client vs exhaustive
// ---------------------------------------------------------------------

/// One row of the demand-vs-exhaustive client table.
#[derive(Clone, Debug)]
pub struct T3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Indirect call-site queries issued.
    pub queries: usize,
    /// Queries fully resolved within budget.
    pub resolved: usize,
    /// Wall time for the whole demand-driven call-graph build.
    pub demand_time: Duration,
    /// Wall time for exhaustive solve + call-graph extraction.
    pub exhaustive_time: Duration,
    /// Average per-query wall time.
    pub avg_query_time: Duration,
    /// `exhaustive_time / demand_time`.
    pub speedup: f64,
    /// Demand targets identical to exhaustive targets on every site.
    pub precision_identical: bool,
    /// Mean callee-set size at indirect sites (precision of the client).
    pub avg_targets: f64,
    /// Mean rule firings per demand query (`demand.fires / demand.queries`).
    pub fires_per_query: f64,
    /// Total demand-side work units (`demand.work` counter).
    pub demand_work: u64,
    /// Total exhaustive-side work units (`anders.work` counter).
    pub exhaustive_work: u64,
    /// `demand_work / exhaustive_work`, or `None` when the exhaustive side
    /// did no measurable work.
    pub work_ratio: Option<f64>,
}

/// Regenerates table T3 with the given per-query budget.
pub fn run_t3(benches: &[Benchmark], budget: Option<u64>) -> Vec<T3Row> {
    benches
        .iter()
        .map(|b| {
            let cp = b.build();
            // Both sides publish into one registry so the report can
            // compare demand-side and exhaustive-side work directly.
            let obs = Obs::new();

            let start = Instant::now();
            let solution = ddpa_anders::solve_with_obs(&cp, &obs);
            let exhaustive_cg = CallGraph::from_exhaustive(&cp, &solution);
            let exhaustive_time = start.elapsed();

            let config = DemandConfig {
                budget,
                ..DemandConfig::default()
            };
            let mut engine = DemandEngine::with_obs(&cp, config, obs.clone());
            let start = Instant::now();
            let (demand_cg, stats) = CallGraph::from_demand(&mut engine);
            let demand_time = start.elapsed();

            let queries = stats.indirect_resolved + stats.indirect_fallback;
            let avg = if queries == 0 {
                Duration::ZERO
            } else {
                demand_time / queries as u32
            };
            let fires = obs.registry.counter_value("demand.fires");
            let demand_queries = obs.registry.counter_value("demand.queries");
            let demand_work = obs.registry.counter_value("demand.work");
            let exhaustive_work = obs.registry.counter_value("anders.work");
            T3Row {
                name: b.name,
                queries,
                resolved: stats.indirect_resolved,
                demand_time,
                exhaustive_time,
                avg_query_time: avg,
                speedup: exhaustive_time.as_secs_f64() / demand_time.as_secs_f64().max(1e-9),
                precision_identical: demand_cg.same_as(&exhaustive_cg),
                avg_targets: demand_cg.avg_indirect_targets(&cp),
                fires_per_query: if demand_queries == 0 {
                    0.0
                } else {
                    fires as f64 / demand_queries as f64
                },
                demand_work,
                exhaustive_work,
                work_ratio: (exhaustive_work != 0)
                    .then(|| demand_work as f64 / exhaustive_work as f64),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// T4: caching ablation
// ---------------------------------------------------------------------

/// One row of the caching-ablation table.
#[derive(Clone, Debug)]
pub struct T4Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Number of queries in the sample.
    pub queries: usize,
    /// Wall time with memoization across queries.
    pub time_cached: Duration,
    /// Wall time with the table cleared between queries.
    pub time_uncached: Duration,
    /// Total rule firings with caching.
    pub work_cached: u64,
    /// Total rule firings without caching.
    pub work_uncached: u64,
}

/// Regenerates table T4 over (up to) `max_queries` dereference queries.
pub fn run_t4(benches: &[Benchmark], max_queries: usize) -> Vec<T4Row> {
    benches
        .iter()
        .map(|b| {
            let cp = b.build();
            let queries: Vec<NodeId> = deref_queries(&cp).into_iter().take(max_queries).collect();

            let mut cached = DemandEngine::new(&cp, DemandConfig::default());
            let start = Instant::now();
            let mut work_cached = 0;
            for &q in &queries {
                work_cached += cached.points_to(q).work;
            }
            let time_cached = start.elapsed();

            let mut uncached = DemandEngine::new(&cp, DemandConfig::default().without_caching());
            let start = Instant::now();
            let mut work_uncached = 0;
            for &q in &queries {
                work_uncached += uncached.points_to(q).work;
            }
            let time_uncached = start.elapsed();

            T4Row {
                name: b.name,
                queries: queries.len(),
                time_cached,
                time_uncached,
                work_cached,
                work_uncached,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// F1: per-query cost distribution
// ---------------------------------------------------------------------

/// One row of the per-query cost-distribution figure.
#[derive(Clone, Debug)]
pub struct F1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Distribution of per-query work (rule firings), caching off so each
    /// query is measured in isolation.
    pub work: Summary,
}

/// Regenerates figure F1 over (up to) `max_queries` dereference queries.
pub fn run_f1(benches: &[Benchmark], max_queries: usize) -> Vec<F1Row> {
    benches
        .iter()
        .map(|b| {
            let cp = b.build();
            let mut engine = DemandEngine::new(&cp, DemandConfig::default().without_caching());
            let mut samples: Vec<u64> = deref_queries(&cp)
                .into_iter()
                .take(max_queries)
                .map(|q| engine.points_to(q).work)
                .collect();
            F1Row {
                name: b.name,
                work: Summary::of(&mut samples),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// F2: cumulative demand time vs. number of queries (crossover)
// ---------------------------------------------------------------------

/// One sampled point of the crossover figure.
#[derive(Clone, Debug)]
pub struct F2Point {
    /// Number of queries answered (with caching).
    pub k: usize,
    /// Cumulative demand time for those `k` queries.
    pub demand_time: Duration,
}

/// One benchmark's crossover curve.
#[derive(Clone, Debug)]
pub struct F2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// The exhaustive baseline (constant in `k`).
    pub exhaustive_time: Duration,
    /// Demand curve, by increasing `k`.
    pub points: Vec<F2Point>,
    /// Smallest sampled `k` whose cumulative demand time exceeds the
    /// exhaustive time, if any.
    pub crossover_k: Option<usize>,
}

/// Regenerates figure F2. `ks` must be increasing.
pub fn run_f2(benches: &[Benchmark], ks: &[usize]) -> Vec<F2Row> {
    benches
        .iter()
        .map(|b| {
            let cp = b.build();
            let start = Instant::now();
            let _ = ddpa_anders::solve(&cp);
            let exhaustive_time = start.elapsed();

            let queries = deref_queries(&cp);
            let mut points = Vec::new();
            let mut clamped: Vec<usize> = ks.iter().map(|&k| k.min(queries.len())).collect();
            clamped.dedup();
            for k in clamped {
                let mut engine = DemandEngine::new(&cp, DemandConfig::default());
                let start = Instant::now();
                for &q in &queries[..k] {
                    let _ = engine.points_to(q);
                }
                points.push(F2Point {
                    k,
                    demand_time: start.elapsed(),
                });
            }
            let crossover_k = points
                .iter()
                .find(|p| p.demand_time > exhaustive_time)
                .map(|p| p.k);
            F2Row {
                name: b.name,
                exhaustive_time,
                points,
                crossover_k,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// F3: resolution rate vs. budget
// ---------------------------------------------------------------------

/// One sampled point of the budget-sweep figure.
#[derive(Clone, Debug)]
pub struct F3Point {
    /// Per-query budget (rule firings).
    pub budget: u64,
    /// Fraction of queries fully resolved under that budget.
    pub resolved: f64,
    /// Mean per-query work actually consumed.
    pub avg_work: f64,
}

/// One benchmark's budget sweep.
#[derive(Clone, Debug)]
pub struct F3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Points by increasing budget.
    pub points: Vec<F3Point>,
}

/// Regenerates figure F3 over (up to) `max_queries` dereference queries.
///
/// A fresh engine is used per budget so partial state from one sweep point
/// cannot help the next; caching stays on *within* a sweep point, matching
/// how a client would actually run under a budget.
pub fn run_f3(benches: &[Benchmark], budgets: &[u64], max_queries: usize) -> Vec<F3Row> {
    benches
        .iter()
        .map(|b| {
            let cp = b.build();
            let queries: Vec<NodeId> = deref_queries(&cp).into_iter().take(max_queries).collect();
            let mut points = Vec::new();
            for &budget in budgets {
                let mut engine =
                    DemandEngine::new(&cp, DemandConfig::default().with_budget(budget));
                let mut resolved = 0usize;
                let mut work = 0u64;
                for &q in &queries {
                    let r = engine.points_to(q);
                    resolved += r.complete as usize;
                    work += r.work;
                }
                let n = queries.len().max(1);
                points.push(F3Point {
                    budget,
                    resolved: resolved as f64 / n as f64,
                    avg_work: work as f64 / n as f64,
                });
            }
            F3Row {
                name: b.name,
                points,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// A3: context-sensitivity (cloning) ablation
// ---------------------------------------------------------------------

/// One sampled point of the context-sensitivity ablation.
#[derive(Clone, Debug)]
pub struct A3Point {
    /// Call-string depth.
    pub k: usize,
    /// `(function, context)` clones created.
    pub clones: usize,
    /// Node-count expansion factor vs the original program.
    pub expansion: f64,
    /// Wall time to expand + solve the expansion.
    pub time: Duration,
    /// Σ projected points-to set sizes (lower = more precise).
    pub total_pts: usize,
}

/// One benchmark's context-sensitivity sweep.
#[derive(Clone, Debug)]
pub struct A3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// The context-insensitive baseline total.
    pub ci_total_pts: usize,
    /// Points by increasing k.
    pub points: Vec<A3Point>,
}

/// Regenerates ablation A3: precision/cost of k-call-string cloning.
pub fn run_a3(benches: &[Benchmark], ks: &[usize]) -> Vec<A3Row> {
    benches
        .iter()
        .map(|b| {
            let cp = b.build();
            let ci = ddpa_anders::solve(&cp);
            let ci_total_pts = cp.node_ids().map(|n| ci.pts(n).len()).sum();
            let mut engine = DemandEngine::new(&cp, DemandConfig::default());
            let (cg, _) = CallGraph::from_demand(&mut engine);
            let points = ks
                .iter()
                .map(|&k| {
                    let start = Instant::now();
                    let cs = ddpa_cxt::CsAnalysis::run_with_callgraph(
                        &cp,
                        &cg,
                        &ddpa_cxt::CloneConfig::with_k(k),
                    );
                    let time = start.elapsed();
                    A3Point {
                        k,
                        clones: cs.cloned.clone_count,
                        expansion: cs.cloned.expansion_factor(&cp),
                        time,
                        total_pts: cs.total_pts(&cp),
                    }
                })
                .collect();
            A3Row {
                name: b.name,
                ci_total_pts,
                points,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// T5: server throughput (ddpa-serve over loopback TCP)
// ---------------------------------------------------------------------

/// One row of the server-throughput table.
#[derive(Clone, Debug)]
pub struct T5Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Queries per measured run.
    pub queries: usize,
    /// One batch request against a cold session (empty memo table).
    pub time_batch_cold: Duration,
    /// The identical batch repeated against the now-warm session.
    pub time_batch_warm: Duration,
    /// The batch fanned out over the server's worker pool (private
    /// per-worker engines, no shared warm cache).
    pub time_batch_parallel: Duration,
    /// One request round-trip per query on the warm session.
    pub time_sequential: Duration,
    /// Median sequential round-trip latency (µs).
    pub lat_p50_us: u64,
    /// 95th-percentile sequential round-trip latency (µs).
    pub lat_p95_us: u64,
    /// 99th-percentile sequential round-trip latency (µs).
    pub lat_p99_us: u64,
    /// `server.cache_hits.<session>` after the warm batch.
    pub cache_hits: u64,
}

impl T5Row {
    /// Queries per second for a measured duration.
    pub fn qps(&self, time: Duration) -> f64 {
        self.queries as f64 / time.as_secs_f64().max(1e-9)
    }
}

/// Regenerates table T5: query throughput of `ddpa-serve` over loopback
/// TCP, batch vs sequential round-trips, cold vs warm session caches.
///
/// Each benchmark gets a fresh in-process server on `127.0.0.1:0`; the
/// program travels over the wire as canonical constraint text, queries
/// are points-to over (up to) `max_queries` dereferenced pointers.
pub fn run_t5(benches: &[Benchmark], max_queries: usize) -> Vec<T5Row> {
    use ddpa_serve::proto::{build, QuerySpec};

    benches
        .iter()
        .map(|b| {
            let cp = b.build();
            let text = ddpa_constraints::print_constraints(&cp);
            let specs: Vec<QuerySpec> = deref_queries(&cp)
                .into_iter()
                .take(max_queries)
                .map(|n| QuerySpec::PointsTo {
                    name: cp.display_node(n),
                })
                .collect();

            let obs = Obs::new();
            let mut config = ddpa_serve::ServeConfig::default();
            config.max_batch = specs.len().max(config.max_batch);
            let server = ddpa_serve::Server::bind("127.0.0.1:0", config, obs.clone())
                .expect("bind loopback");
            let addr = server.local_addr();
            let handle = server.handle();
            let thread = std::thread::spawn(move || server.run());

            let mut client = ddpa_serve::Client::connect(addr).expect("connect");
            client
                .expect_ok(&build::open(b.name, &text, false, None))
                .expect("open session");

            // timeout_ms=0 disables the wall-clock deadline: T5 measures
            // raw throughput, not timeout behaviour.
            let batch = build::batch(b.name, &specs, false, None, Some(0));
            let start = Instant::now();
            client.expect_ok(&batch).expect("cold batch");
            let time_batch_cold = start.elapsed();

            let start = Instant::now();
            client.expect_ok(&batch).expect("warm batch");
            let time_batch_warm = start.elapsed();
            let cache_hits = obs
                .registry
                .counter_value(&format!("server.cache_hits.{}", b.name));

            let parallel = build::batch(b.name, &specs, true, None, Some(0));
            let start = Instant::now();
            client.expect_ok(&parallel).expect("parallel batch");
            let time_batch_parallel = start.elapsed();

            let latency = ddpa_obs::Histogram::default();
            let start = Instant::now();
            for spec in &specs {
                let t = Instant::now();
                client
                    .expect_ok(&build::query(b.name, spec, None, Some(0)))
                    .expect("sequential query");
                latency.record_duration(t.elapsed());
            }
            let time_sequential = start.elapsed();

            handle.shutdown();
            thread
                .join()
                .expect("server thread")
                .expect("clean shutdown");

            T5Row {
                name: b.name,
                queries: specs.len(),
                time_batch_cold,
                time_batch_warm,
                time_batch_parallel,
                time_sequential,
                lat_p50_us: latency.quantile(0.50),
                lat_p95_us: latency.quantile(0.95),
                lat_p99_us: latency.quantile(0.99),
                cache_hits,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// T6: online cycle collapsing on cycle-dominated programs
// ---------------------------------------------------------------------

/// One row of the cycle-collapsing table.
#[derive(Clone, Debug)]
pub struct T6Row {
    /// Workload name (`cyc-<scale>`).
    pub name: String,
    /// Pointer-variable queries issued (the copy-flow demand set).
    pub queries: usize,
    /// Total work units with collapsing on (default config).
    pub work_on: u64,
    /// Total work units with collapsing off.
    pub work_off: u64,
    /// Total rule firings with collapsing on.
    pub fires_on: u64,
    /// Total rule firings with collapsing off.
    pub fires_off: u64,
    /// Wall time with collapsing on.
    pub time_on: Duration,
    /// Wall time with collapsing off.
    pub time_off: Duration,
    /// SCC passes run by the collapsing engine.
    pub cycle_runs: u64,
    /// Copy cycles collapsed.
    pub cycles_collapsed: u64,
    /// Goals merged away into representatives.
    pub merged_goals: u64,
    /// Every query answer bit-identical between the two configurations.
    pub identical: bool,
}

impl T6Row {
    /// `work_off / work_on` — the headline reduction factor.
    pub fn work_reduction(&self) -> f64 {
        self.work_off as f64 / self.work_on.max(1) as f64
    }
}

/// Regenerates table T6: demand work with online cycle collapsing on vs
/// off, over the cycle-dominated generated suite ([`ddpa_gen::cyclic`]).
///
/// Queries cover the pointer variables (ring members, tails) — the copy
/// flow the optimization targets; querying the address-taken objects
/// would measure the `ptb` judgment, which has no per-goal duplication
/// for collapsing to remove.
pub fn run_t6(scales: &[usize]) -> Vec<T6Row> {
    scales
        .iter()
        .map(|&scale| {
            let cp = ddpa_gen::generate_cyclic(&ddpa_gen::CyclicConfig::sized(42, scale));
            let queries: Vec<NodeId> = cp
                .node_ids()
                .filter(|&n| !cp.display_node(n).contains("obj"))
                .collect();
            let answer = |config: DemandConfig| {
                let mut engine = DemandEngine::new(&cp, config);
                let start = Instant::now();
                let answers: Vec<Vec<NodeId>> =
                    queries.iter().map(|&q| engine.points_to(q).pts).collect();
                (answers, start.elapsed(), engine.stats())
            };
            let (ans_on, time_on, on) = answer(DemandConfig::default());
            let (ans_off, time_off, off) =
                answer(DemandConfig::default().without_cycle_collapsing());
            T6Row {
                name: format!("cyc-{scale}"),
                queries: queries.len(),
                work_on: on.work,
                work_off: off.work,
                fires_on: on.fires,
                fires_off: off.fires,
                time_on,
                time_off,
                cycle_runs: on.cycle_runs,
                cycles_collapsed: on.cycles_collapsed,
                merged_goals: on.merged_goals,
                identical: ans_on == ans_off,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// T7: shared cross-worker memo table (concurrent tabling)
// ---------------------------------------------------------------------

/// One row of the shared-memo table.
#[derive(Clone, Debug)]
pub struct T7Row {
    /// Workload name (`cyc-<scale>`).
    pub name: String,
    /// Pointer-variable queries issued (round-robin across workers).
    pub queries: usize,
    /// Simulated worker count.
    pub workers: usize,
    /// Rule firings for one engine answering the whole batch (the floor).
    pub fires_single: u64,
    /// Total rule firings across workers sharing one memo table.
    pub fires_shared: u64,
    /// Total rule firings across workers with private tables only.
    pub fires_private: u64,
    /// Completed goals installed from the shared table.
    pub share_hits: u64,
    /// Completed goals published to the shared table.
    pub share_publishes: u64,
    /// Every query answer bit-identical across all three configurations.
    pub identical: bool,
}

impl T7Row {
    /// `fires_shared / fires_single` — near 1.0 when tabling works.
    pub fn shared_ratio(&self) -> f64 {
        self.fires_shared as f64 / self.fires_single.max(1) as f64
    }

    /// `fires_private / fires_single` — near the worker count without it.
    pub fn private_ratio(&self) -> f64 {
        self.fires_private as f64 / self.fires_single.max(1) as f64
    }
}

/// Regenerates table T7: total work of a multi-worker batch with and
/// without the shared cross-worker memo table ([`SharedMemo`]).
///
/// Workers are simulated as `workers` sequential engines with queries
/// dispatched round-robin, which interleaves publish/consume the way a
/// real parallel batch does while keeping the work counts deterministic
/// on any host. The cyclic suite's queries overlap heavily in subgoals,
/// so private tables redo the shared closure once per worker (≈ `workers`
/// × the single-engine floor) while the shared table collapses the batch
/// back to roughly one engine's work.
pub fn run_t7(scales: &[usize], workers: usize) -> Vec<T7Row> {
    assert!(workers > 0, "need at least one simulated worker");
    scales
        .iter()
        .map(|&scale| {
            let cp = ddpa_gen::generate_cyclic(&ddpa_gen::CyclicConfig::sized(42, scale));
            let queries: Vec<NodeId> = cp
                .node_ids()
                .filter(|&n| !cp.display_node(n).contains("obj"))
                .collect();

            let mut single = DemandEngine::new(&cp, DemandConfig::default());
            let baseline: Vec<Vec<NodeId>> =
                queries.iter().map(|&q| single.points_to(q).pts).collect();
            let fires_single = single.stats().fires;

            let run_fleet = |shared: Option<Arc<SharedMemo>>| {
                let mut engines: Vec<DemandEngine> = (0..workers)
                    .map(|_| {
                        let engine = DemandEngine::new(&cp, DemandConfig::default());
                        match &shared {
                            Some(s) => engine.with_shared_memo(Arc::clone(s)),
                            None => engine,
                        }
                    })
                    .collect();
                let answers: Vec<Vec<NodeId>> = queries
                    .iter()
                    .enumerate()
                    .map(|(i, &q)| engines[i % workers].points_to(q).pts)
                    .collect();
                let stats: Vec<EngineStats> = engines.iter().map(|e| e.stats()).collect();
                (answers, stats)
            };
            let (ans_shared, stats_shared) = run_fleet(Some(Arc::new(SharedMemo::new())));
            let (ans_private, stats_private) = run_fleet(None);

            T7Row {
                name: format!("cyc-{scale}"),
                queries: queries.len(),
                workers,
                fires_single,
                fires_shared: stats_shared.iter().map(|s| s.fires).sum(),
                fires_private: stats_private.iter().map(|s| s.fires).sum(),
                share_hits: stats_shared.iter().map(|s| s.share_hits).sum(),
                share_publishes: stats_shared.iter().map(|s| s.share_publishes).sum(),
                identical: ans_shared == baseline && ans_private == baseline,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// T8: durable snapshots — cold vs restored time-to-first-answer
// ---------------------------------------------------------------------

/// One row of the snapshot warm-start table.
#[derive(Clone, Debug)]
pub struct T8Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Dereference queries answered in each run.
    pub queries: usize,
    /// Completed fixpoints captured in the snapshot.
    pub entries: usize,
    /// Snapshot size on disk, in bytes.
    pub bytes: usize,
    /// Cold run: fresh engine deduces every answer from scratch.
    pub time_cold: Duration,
    /// Restored run: read + verify + warm-start + answer the same set.
    pub time_restored: Duration,
    /// Restored answers bit-identical to the cold answers.
    pub identical: bool,
}

impl T8Row {
    /// `time_cold / time_restored` — the headline warm-start gain.
    pub fn speedup(&self) -> f64 {
        self.time_cold.as_secs_f64() / self.time_restored.as_secs_f64().max(1e-9)
    }
}

/// Regenerates table T8: time-to-first-answer of a cold engine vs one
/// warm-started from a durable snapshot ([`ddpa_snap`]).
///
/// The cold run answers every dereference query from scratch, publishing
/// its completed fixpoints into a [`SharedMemo`]; the snapshot of that
/// table round-trips through an actual file, and the restored run
/// measures the full restore path a server pays on startup: read,
/// checksum + program-hash verification, warm-start install, then
/// answering the identical query set.
pub fn run_t8(benches: &[Benchmark]) -> Vec<T8Row> {
    benches
        .iter()
        .map(|b| {
            let cp = b.build();
            let text = ddpa_constraints::print_constraints(&cp);
            let queries: Vec<NodeId> = deref_queries(&cp);

            let shared = Arc::new(SharedMemo::new());
            let mut cold = DemandEngine::new(&cp, DemandConfig::default())
                .with_shared_memo(Arc::clone(&shared));
            let start = Instant::now();
            let cold_answers: Vec<Vec<NodeId>> =
                queries.iter().map(|&q| cold.points_to(q).pts).collect();
            let time_cold = start.elapsed();

            let snapshot = ddpa_snap::Snapshot::of_memo(&shared, text.clone());
            let dir = std::env::temp_dir().join("ddpa-bench-t8");
            let path = dir.join(format!("{}.snap", b.name));
            let bytes = ddpa_snap::write_file(&snapshot, &path).expect("write snapshot");

            let start = Instant::now();
            let restored = ddpa_snap::read_file(&path).expect("read snapshot");
            restored.verify_program(&text).expect("same program");
            let mut warm = DemandEngine::new(&cp, DemandConfig::default());
            warm.warm_start(&restored.entries);
            let warm_answers: Vec<Vec<NodeId>> =
                queries.iter().map(|&q| warm.points_to(q).pts).collect();
            let time_restored = start.elapsed();
            let _ = std::fs::remove_file(&path);

            T8Row {
                name: b.name,
                queries: queries.len(),
                entries: snapshot.entries.len(),
                bytes,
                time_cold,
                time_restored,
                identical: cold_answers == warm_answers,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// A2: parallel query driver scaling
// ---------------------------------------------------------------------

/// One point of the parallel-scaling figure.
#[derive(Clone, Debug)]
pub struct A2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// (threads, wall time, speedup vs 1 thread), by increasing threads.
    pub points: Vec<(usize, Duration, f64)>,
}

/// Regenerates figure A2 over (up to) `max_queries` dereference queries.
///
/// Queries run **uncached** so per-thread work is fixed and the figure
/// isolates raw scheduling behaviour. With caching on, workers share one
/// memo table (concurrent tabling — see [`run_t7`]): the batch then does
/// roughly the work of a single cached engine, so wall-clock "speedup"
/// would measure how fast one engine's work drains rather than scaling.
/// T7 measures that work-sharing directly in deterministic rule firings;
/// `EXPERIMENTS.md` §A2 discusses the trade-off.
pub fn run_a2(benches: &[Benchmark], threads: &[usize], max_queries: usize) -> Vec<A2Row> {
    let config = DemandConfig::default().without_caching();
    benches
        .iter()
        .map(|b| {
            let cp = b.build();
            let queries: Vec<NodeId> = deref_queries(&cp).into_iter().take(max_queries).collect();
            let mut base = Duration::ZERO;
            let mut points = Vec::new();
            for &t in threads {
                let start = Instant::now();
                let _ = points_to_parallel(&cp, &queries, t, &config);
                let time = start.elapsed();
                if t == threads[0] {
                    base = time;
                }
                let speedup = base.as_secs_f64() / time.as_secs_f64().max(1e-9);
                points.push((t, time, speedup));
            }
            A2Row {
                name: b.name,
                points,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// T9: flight-recorder overhead + critical-path parallelism headroom
// ---------------------------------------------------------------------

/// One row of the flight-recorder / critical-path table.
#[derive(Clone, Debug)]
pub struct T9Row {
    /// Workload name (`cyc-<scale>`).
    pub name: String,
    /// Pointer-variable queries issued.
    pub queries: usize,
    /// Total attributed deduction work `W`.
    pub work: u64,
    /// Critical-path span `S` over the goal-graph condensation.
    pub span: u64,
    /// `W / S` — the parallelism-headroom bound.
    pub headroom: f64,
    /// Live goals in the goal graph.
    pub goals: usize,
    /// Dependency edges between distinct goals.
    pub edges: usize,
    /// Flight events landed in the ring at the default sampling.
    pub flight_recorded: u64,
    /// Events evicted by ring wrap-around.
    pub flight_dropped: u64,
    /// Wall time with the recorder off (best of the repeats).
    pub time_off: Duration,
    /// Wall time with the recorder on (best of the repeats).
    pub time_on: Duration,
    /// Every query answer bit-identical recorder on vs off.
    pub identical: bool,
}

impl T9Row {
    /// Recorder overhead relative to the recorder-off wall time
    /// (0.03 = 3% slower with the recorder on).
    pub fn overhead(&self) -> f64 {
        self.time_on.as_secs_f64() / self.time_off.as_secs_f64().max(1e-9) - 1.0
    }
}

/// Regenerates table T9: what the deduction flight recorder costs, and
/// what the goal graph's critical path says about parallelism headroom.
///
/// Each scale of the cyclic suite is answered twice — recorder off, then
/// on at the default capacity/sampling — taking the best wall time of
/// `repeats` runs per configuration so scheduler noise does not swamp
/// the few-percent effect being measured. `W` (total attributed work),
/// `S` (the heaviest dependent chain over the SCC condensation of the
/// goal graph) and `W/S` come from the recorder-on engine's drained
/// table. Recording must never change deduction, which the row asserts
/// via `identical`.
pub fn run_t9(scales: &[usize], repeats: usize) -> Vec<T9Row> {
    assert!(repeats > 0, "need at least one timed run");
    scales
        .iter()
        .map(|&scale| {
            let cp = ddpa_gen::generate_cyclic(&ddpa_gen::CyclicConfig::sized(42, scale));
            let queries: Vec<NodeId> = cp
                .node_ids()
                .filter(|&n| !cp.display_node(n).contains("obj"))
                .collect();
            let run = |config: &DemandConfig| {
                let mut best = Duration::MAX;
                let mut kept = None;
                for _ in 0..repeats {
                    let mut engine = DemandEngine::new(&cp, config.clone());
                    let start = Instant::now();
                    let answers: Vec<Vec<NodeId>> =
                        queries.iter().map(|&q| engine.points_to(q).pts).collect();
                    best = best.min(start.elapsed());
                    kept = Some((answers, engine));
                }
                let (answers, engine) = kept.expect("at least one run");
                (answers, best, engine)
            };
            let (ans_off, time_off, _) = run(&DemandConfig::default().without_flight_recorder());
            let (ans_on, time_on, engine) = run(&DemandConfig::default());
            let cpath = engine.critical_path();
            let (flight_recorded, flight_dropped) = engine
                .flight_recorder()
                .map(|f| (f.recorded(), f.dropped()))
                .unwrap_or((0, 0));
            T9Row {
                name: format!("cyc-{scale}"),
                queries: queries.len(),
                work: cpath.work,
                span: cpath.span,
                headroom: cpath.headroom,
                goals: cpath.goals,
                edges: cpath.edges,
                flight_recorded,
                flight_dropped,
                time_off,
                time_on,
                identical: ans_on == ans_off,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// T10: intra-query parallel scheduler speedup vs T9 headroom
// ---------------------------------------------------------------------

/// One row of the single-query parallel-scheduler table.
#[derive(Clone, Debug)]
pub struct T10Row {
    /// Workload name (`wide-<chains>` / `cyc-<scale>`).
    pub name: String,
    /// Display name of the one queried variable.
    pub query: String,
    /// Worker threads used by the parallel run.
    pub workers: usize,
    /// The query's own `W/S` headroom bound (sequential goal graph).
    pub headroom: f64,
    /// Sequential wall time (best of the repeats).
    pub time_seq: Duration,
    /// Parallel wall time at `workers` threads (best of the repeats).
    pub time_par: Duration,
    /// Sequential work with cycle collapsing off — the fire multiset the
    /// scheduler replays.
    pub work_seq: u64,
    /// Total work summed over all workers.
    pub work_par: u64,
    /// Frames taken from another worker's deque.
    pub steals: u64,
    /// Steps that parked an incomplete frame.
    pub parked: u64,
    /// Reschedules of previously stepped frames.
    pub wakeups: u64,
    /// Parallel answer bit-identical to the sequential one.
    pub identical: bool,
}

impl T10Row {
    /// Measured wall-clock speedup of the parallel run.
    pub fn speedup(&self) -> f64 {
        self.time_seq.as_secs_f64() / self.time_par.as_secs_f64().max(1e-9)
    }

    /// Total-work inflation of the parallel run (1.0 = the exact same
    /// fire multiset; the acceptance bound is ≤ 1.1).
    pub fn work_ratio(&self) -> f64 {
        self.work_par as f64 / (self.work_seq as f64).max(1e-9)
    }
}

/// Regenerates table T10: what the frame scheduler actually extracts
/// from the headroom T9 bounds.
///
/// Each workload is answered as ONE query — `pts(hub)` on the wide
/// suite, the first ring variable on the cyclic suite — sequentially and
/// then on the work-stealing scheduler at `workers` threads, best wall
/// time of `repeats` fresh-engine runs each. The wide rows are the
/// headroom-rich regime (independent chains, `W/S ≈ chains`); the cyclic
/// rows are the antithesis (one strongly-connected ring per query,
/// `W/S ≈ 1`) and pin down that speedup tracks headroom rather than
/// thread count. `work_seq` is measured with cycle collapsing off
/// because that is the fire multiset the scheduler replays; on a fresh
/// table the two are equal, which `work_ratio` makes visible.
pub fn run_t10(
    wide_sizes: &[usize],
    cyc_scales: &[usize],
    workers: usize,
    repeats: usize,
) -> Vec<T10Row> {
    assert!(repeats > 0, "need at least one timed run");
    let workers = workers.max(2);
    let named = |cp: &ConstraintProgram, name: &str| {
        cp.node_ids()
            .find(|&n| cp.display_node(n) == name)
            .unwrap_or_else(|| panic!("workload lacks node {name}"))
    };
    let workloads: Vec<(String, ConstraintProgram, String)> = wide_sizes
        .iter()
        .map(|&size| {
            let config = ddpa_gen::WideConfig::sized(97, size);
            let cp = ddpa_gen::generate_wide(&config);
            (format!("wide-{}", config.chains), cp, "hub".to_owned())
        })
        .chain(cyc_scales.iter().map(|&scale| {
            let cp = ddpa_gen::generate_cyclic(&ddpa_gen::CyclicConfig::sized(42, scale));
            let query = cp
                .node_ids()
                .map(|n| cp.display_node(n))
                .find(|name| !name.contains("obj"))
                .expect("cyclic workload has ring variables");
            (format!("cyc-{scale}"), cp, query)
        }))
        .collect();
    workloads
        .into_iter()
        .map(|(name, cp, query)| {
            let q = named(&cp, &query);
            let best_of = |config: &DemandConfig| {
                let mut best = Duration::MAX;
                let mut kept = None;
                for _ in 0..repeats {
                    let mut engine = DemandEngine::new(&cp, config.clone());
                    let start = Instant::now();
                    let result = engine.points_to(q);
                    best = best.min(start.elapsed());
                    kept = Some((result, engine));
                }
                let (result, engine) = kept.expect("at least one run");
                (result, best, engine)
            };
            let (seq, time_seq, seq_engine) = best_of(&DemandConfig::default());
            let headroom = seq_engine.critical_path().headroom;
            // The scheduler runs collapse-off; measure the matching
            // sequential fire multiset for the work comparison.
            let (seq_off, _, _) = best_of(&DemandConfig::default().without_cycle_collapsing());
            let (par, time_par, par_engine) =
                best_of(&DemandConfig::default().with_workers(workers));
            let stats = par_engine.stats();
            T10Row {
                name,
                query,
                workers,
                headroom,
                time_seq,
                time_par,
                work_seq: seq_off.work,
                work_par: par.work,
                steals: stats.sched_steals,
                parked: stats.sched_parked,
                wakeups: stats.sched_wakeups,
                identical: par.pts == seq.pts && par.complete == seq.complete,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// T11: edit-heavy sessions — selective invalidation vs full reload
// ---------------------------------------------------------------------

/// One row of the edit-heavy workload table.
#[derive(Clone, Debug)]
pub struct T11Row {
    /// Workload name (`edit-<chains>x<len>`).
    pub name: String,
    /// Single-constraint edits applied in the script.
    pub edits: usize,
    /// Queries re-answered after every edit (one per chain tail).
    pub queries: usize,
    /// Mean fraction of completed goals kept warm across the edits.
    pub retained_frac: f64,
    /// Goals invalidated, summed over the script.
    pub invalidated: usize,
    /// Goals retained, summed over the script.
    pub retained: usize,
    /// Total wall time to apply every edit incrementally and re-answer
    /// the query set after each (best of the repeats).
    pub time_incremental: Duration,
    /// Same script with full invalidation: a cold engine per edit
    /// re-answers the query set (best of the repeats).
    pub time_full: Duration,
    /// Incremental answers bit-identical to the cold engine's at every
    /// generation.
    pub identical: bool,
}

impl T11Row {
    /// Wall-clock advantage of keeping untouched goals warm.
    pub fn speedup(&self) -> f64 {
        self.time_full.as_secs_f64() / self.time_incremental.as_secs_f64().max(1e-9)
    }
}

/// Builds generation `upto` of the T11 workload: `chains` disjoint copy
/// chains of length `len`, where edit `k` repoints the head of chain
/// `k % chains` at a fresh object — dirtying exactly that chain's goals
/// and leaving every other chain's fixpoints warm.
fn edit_workload(chains: usize, len: usize, upto: usize) -> ConstraintProgram {
    let mut b = ddpa_constraints::ConstraintBuilder::new();
    let mut tails = Vec::new();
    for c in 0..chains {
        let obj = b.var(&format!("obj{c}"));
        let mut prev = b.var(&format!("c{c}_0"));
        b.addr_of(prev, obj);
        for i in 1..len {
            let v = b.var(&format!("c{c}_{i}"));
            b.copy(v, prev);
            prev = v;
        }
        tails.push(prev);
    }
    for k in 0..upto {
        let obj = b.var(&format!("eobj{k}"));
        let head = format!("c{}_0", k % chains);
        let head = b.var(&head); // existing name: returns the minted node
        b.addr_of(head, obj);
    }
    b.build()
}

/// Regenerates table T11: the `add-constraints` path under an edit-heavy
/// session. A warm engine steps through `edits` single-constraint edits
/// via `reload_incremental`, re-answering one query per chain tail after
/// each; the baseline pays full invalidation (a cold engine per edit)
/// for the same answers. Support-set dirtying keeps `(chains-1)/chains`
/// of the table warm per edit, which is where the speedup comes from.
pub fn run_t11(shapes: &[(usize, usize)], edits: usize, repeats: usize) -> Vec<T11Row> {
    assert!(repeats > 0, "need at least one timed run");
    shapes
        .iter()
        .map(|&(chains, len)| {
            let gens: Vec<ConstraintProgram> =
                (0..=edits).map(|g| edit_workload(chains, len, g)).collect();
            let tails: Vec<Vec<NodeId>> = gens
                .iter()
                .map(|cp| {
                    (0..chains)
                        .map(|c| {
                            let name = format!("c{c}_{}", len - 1);
                            cp.node_ids()
                                .find(|&n| cp.display_node(n) == name)
                                .expect("chain tail exists")
                        })
                        .collect()
                })
                .collect();

            let mut best_inc = Duration::MAX;
            let mut best_full = Duration::MAX;
            let (mut invalidated, mut retained) = (0usize, 0usize);
            let mut retained_fracs = Vec::new();
            let mut identical = true;
            for rep in 0..repeats {
                let mut engine = DemandEngine::new(&gens[0], DemandConfig::default());
                for &t in &tails[0] {
                    let _ = engine.points_to(t);
                }
                let mut time_inc = Duration::ZERO;
                let mut time_full = Duration::ZERO;
                for g in 1..=edits {
                    let start = Instant::now();
                    let diff = ddpa_constraints::diff_programs(&gens[g - 1], &gens[g]);
                    let stats = engine.reload_incremental(&gens[g], &diff);
                    let warm: Vec<_> = tails[g].iter().map(|&t| engine.points_to(t)).collect();
                    time_inc += start.elapsed();
                    assert!(!stats.full, "append-only edit stays incremental");
                    if rep == 0 {
                        invalidated += stats.invalidated;
                        retained += stats.retained;
                        let total = stats.invalidated + stats.retained;
                        retained_fracs.push(stats.retained as f64 / total.max(1) as f64);
                    }

                    let start = Instant::now();
                    let mut cold = DemandEngine::new(&gens[g], DemandConfig::default());
                    let full: Vec<_> = tails[g].iter().map(|&t| cold.points_to(t)).collect();
                    time_full += start.elapsed();
                    identical &= warm
                        .iter()
                        .zip(&full)
                        .all(|(w, f)| w.pts == f.pts && w.complete && f.complete);
                }
                best_inc = best_inc.min(time_inc);
                best_full = best_full.min(time_full);
            }
            T11Row {
                name: format!("edit-{chains}x{len}"),
                edits,
                queries: chains,
                retained_frac: retained_fracs.iter().sum::<f64>()
                    / retained_fracs.len().max(1) as f64,
                invalidated,
                retained,
                time_incremental: best_inc,
                time_full: best_full,
                identical,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Vec<Benchmark> {
        vec![ddpa_gen::suite().into_iter().nth(1).expect("syn-1k exists")]
    }

    #[test]
    fn t11_edits_retain_goals_and_stay_exact() {
        let rows = run_t11(&[(8, 12)], 4, 1);
        let r = &rows[0];
        assert!(r.identical, "incremental answers match cold engines: {r:?}");
        assert!(r.retained > 0, "untouched chains stay warm: {r:?}");
        assert!(
            r.retained_frac > 0.5,
            "single-chain edits keep most of the table: {r:?}"
        );
        assert!(r.invalidated > 0, "the edited chain is dirtied: {r:?}");
    }

    #[test]
    fn t1_reports_characteristics() {
        let rows = run_t1(&tiny());
        assert_eq!(rows[0].name, "syn-1k");
        assert!(rows[0].stats.assignments() >= 900);
    }

    #[test]
    fn t3_demand_matches_exhaustive_precision() {
        let rows = run_t3(&tiny(), None);
        assert!(rows[0].precision_identical);
        assert_eq!(rows[0].resolved, rows[0].queries);
    }

    #[test]
    fn t3_reports_registry_work_metrics() {
        let rows = run_t3(&tiny(), None);
        let r = &rows[0];
        assert!(r.fires_per_query > 0.0, "demand queries fire rules: {r:?}");
        assert!(r.demand_work > 0, "demand side records work: {r:?}");
        assert!(r.exhaustive_work > 0, "exhaustive side records work: {r:?}");
        let ratio = r.work_ratio.expect("exhaustive work is nonzero");
        assert!((ratio - r.demand_work as f64 / r.exhaustive_work as f64).abs() < 1e-12);
    }

    #[test]
    fn f3_resolution_rate_is_monotone() {
        let rows = run_f3(&tiny(), &[1, 100, u64::MAX], 50);
        let pts = &rows[0].points;
        assert!(pts[0].resolved <= pts[1].resolved + 1e-9);
        assert!(pts[1].resolved <= pts[2].resolved + 1e-9);
        assert!(
            (pts[2].resolved - 1.0).abs() < 1e-9,
            "an effectively unlimited budget resolves all: {:?}",
            pts[2]
        );
    }

    #[test]
    fn t4_caching_reduces_work() {
        let rows = run_t4(&tiny(), 100);
        assert!(rows[0].work_cached <= rows[0].work_uncached);
    }

    #[test]
    fn t5_server_throughput_warm_beats_cold_on_work() {
        let rows = run_t5(&tiny(), 50);
        let r = &rows[0];
        assert_eq!(r.name, "syn-1k");
        assert!(r.queries > 0 && r.queries <= 50);
        assert!(
            r.cache_hits > 0,
            "the repeated batch must hit the warm session cache: {r:?}"
        );
        assert!(r.qps(r.time_batch_warm) > 0.0);
    }

    #[test]
    fn t6_collapsing_at_least_halves_work_with_identical_answers() {
        let rows = run_t6(&[6, 8]);
        for r in &rows {
            assert!(r.identical, "answers must be bit-identical: {r:?}");
            assert!(r.cycles_collapsed > 0, "rings must collapse: {r:?}");
            assert!(
                r.work_on * 2 <= r.work_off,
                "expected ≥2× work reduction: {r:?}"
            );
            assert!(r.fires_on * 2 <= r.fires_off, "fires too: {r:?}");
        }
    }

    #[test]
    fn t7_shared_table_collapses_cross_worker_duplication() {
        let rows = run_t7(&[6, 8], 4);
        for r in &rows {
            assert!(r.identical, "answers must be bit-identical: {r:?}");
            assert!(
                r.share_hits > 0,
                "workers must reuse published goals: {r:?}"
            );
            assert!(r.share_publishes > 0, "fixpoints must be published: {r:?}");
            assert!(
                r.shared_ratio() <= 1.2,
                "shared batch must do ≈ single-engine work: {r:?}"
            );
            assert!(
                r.private_ratio() >= 2.0,
                "private tables must duplicate the closure: {r:?}"
            );
        }
    }

    #[test]
    fn t8_restored_engine_is_faster_with_identical_answers() {
        let rows = run_t8(&tiny());
        for r in &rows {
            assert!(r.identical, "answers must be bit-identical: {r:?}");
            assert!(r.entries > 0, "snapshot must capture fixpoints: {r:?}");
            assert!(r.bytes > 0, "snapshot must land on disk: {r:?}");
            assert!(
                r.speedup() >= 2.0,
                "warm start must beat cold deduction clearly: {r:?}"
            );
        }
    }

    #[test]
    fn t9_reports_headroom_and_identical_answers() {
        let rows = run_t9(&[6, 8], 1);
        for r in &rows {
            assert!(r.identical, "recording must not change answers: {r:?}");
            assert!(r.work > 0 && r.span > 0, "work attributed: {r:?}");
            assert!(r.span <= r.work, "span bounded by total work: {r:?}");
            assert!(r.headroom >= 1.0 - 1e-9, "headroom is W/S >= 1: {r:?}");
            assert!((r.headroom - r.work as f64 / r.span as f64).abs() < 1e-9);
            assert!(r.goals > 0, "live goals in the graph: {r:?}");
            assert!(r.flight_recorded > 0, "recorder captured events: {r:?}");
        }
    }

    #[test]
    fn t10_scheduler_is_exact_and_work_stays_bounded() {
        let rows = run_t10(&[600], &[4], 4, 1);
        assert_eq!(rows.len(), 2);
        let wide = &rows[0];
        assert!(wide.name.starts_with("wide-"), "{wide:?}");
        assert_eq!(wide.query, "hub");
        assert!(wide.identical, "answers must be bit-identical: {wide:?}");
        assert!(
            wide.headroom > 1.5,
            "wide workloads are the headroom-rich regime: {wide:?}"
        );
        assert_eq!(
            wide.work_par, wide.work_seq,
            "acyclic fire multiset is replayed exactly: {wide:?}"
        );
        let cyc = &rows[1];
        assert!(cyc.identical, "answers must be bit-identical: {cyc:?}");
        assert!(
            cyc.work_ratio() >= 1.0 - 1e-9,
            "parallel can't do less than the collapse-off multiset: {cyc:?}"
        );
        for r in &rows {
            assert_eq!(r.workers, 4);
            assert!(r.speedup() > 0.0);
        }
    }

    #[test]
    fn query_sets_are_nonempty() {
        let cp = tiny()[0].build();
        assert!(!deref_queries(&cp).is_empty());
        assert!(!fp_queries(&cp).is_empty());
    }
}
