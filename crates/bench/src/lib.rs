//! Experiment harness: one runner per table/figure of the evaluation.
//!
//! Each `run_*` function regenerates the data behind one table or figure
//! (the experiment ids T1–T7, F1–F3, A2 are indexed in `DESIGN.md` and the
//! measured outputs recorded in `EXPERIMENTS.md`). The `report` binary
//! renders them as Markdown; the Criterion benches under `benches/` time
//! the same workloads with statistical rigor.

pub mod harness;
pub mod history;
pub mod render;

pub use harness::*;
