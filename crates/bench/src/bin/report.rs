//! Regenerates every table and figure of the evaluation as Markdown.
//!
//! ```text
//! report [--quick|--full] [t1 t2 t3 t4 t5 f1 f2 f3 a2 ...]
//! ```
//!
//! With no experiment ids, all experiments run. `--quick` (default) uses
//! the small-suite prefix; `--full` runs the complete suite (minutes).

use std::time::Duration;

use ddpa_bench::render::{count, dur, pct, ratio, table};
use ddpa_bench::*;
use ddpa_gen::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |id: &str| wanted.is_empty() || wanted.contains(&id);

    let benches: Vec<Benchmark> = if full {
        ddpa_gen::suite()
    } else {
        ddpa_gen::quick_suite()
    };
    // Dense-query experiments (every dereference site is a query) always
    // run on the quick suite: on the saturated large programs, inverse
    // (ptb) reasoning makes dense query sets far more expensive than the
    // sparse call-graph client measured by T3.
    let quick: Vec<Benchmark> = ddpa_gen::quick_suite();
    println!(
        "# ddpa evaluation report ({} suite: {})\n",
        if full { "full" } else { "quick" },
        benches
            .iter()
            .map(|b| b.name)
            .collect::<Vec<_>>()
            .join(", ")
    );

    if want("t1") {
        t1(&benches);
    }
    if want("t2") {
        t2(&benches);
    }
    if want("t3") {
        t3(&benches);
    }
    if want("t4") {
        t4(&quick);
    }
    if want("t5") {
        t5(&quick);
    }
    if want("f1") {
        f1(&quick);
    }
    if want("f2") {
        f2(&quick);
    }
    if want("f3") {
        f3(&quick);
    }
    if want("a2") {
        a2(&quick);
    }
    if want("a3") {
        a3(&quick);
    }
}

fn t1(benches: &[Benchmark]) {
    println!("## T1 — Benchmark characteristics\n");
    let rows: Vec<Vec<String>> = run_t1(benches)
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                count(r.stats.nodes),
                count(r.stats.assignments()),
                count(r.stats.addr_ofs),
                count(r.stats.copies),
                count(r.stats.loads),
                count(r.stats.stores),
                count(r.stats.field_addrs),
                count(r.stats.funcs),
                count(r.stats.direct_calls),
                count(r.stats.indirect_calls),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "locations",
                "assignments",
                "addr-of",
                "copy",
                "load",
                "store",
                "field",
                "funcs",
                "direct calls",
                "indirect calls"
            ],
            &rows
        )
    );
}

fn t2(benches: &[Benchmark]) {
    println!("## T2 — Exhaustive (whole-program) analysis times; A1 — cycle-collapsing ablation\n");
    let rows: Vec<Vec<String>> = run_t2(benches)
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                dur(r.time),
                dur(r.time_no_cycles),
                count(r.stats.propagations as usize),
                count(r.stats.edges_added as usize),
                count(r.stats.nodes_collapsed as usize),
                count(r.total_pts),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "solve (cycles on)",
                "solve (cycles off)",
                "propagations",
                "edges",
                "collapsed",
                "Σ|pts|"
            ],
            &rows
        )
    );
}

fn t3(benches: &[Benchmark]) {
    println!("## T3 — Demand-driven indirect-call resolution vs exhaustive (budget ∞)\n");
    let rows: Vec<Vec<String>> = run_t3(benches, None)
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                count(r.queries),
                format!("{}/{}", r.resolved, r.queries),
                dur(r.demand_time),
                dur(r.avg_query_time),
                dur(r.exhaustive_time),
                ratio(r.speedup),
                format!("{:.1}", r.fires_per_query),
                match r.work_ratio {
                    Some(w) => format!(
                        "{}/{} ({w:.3}x)",
                        count(r.demand_work as usize),
                        count(r.exhaustive_work as usize)
                    ),
                    None => "n/a".into(),
                },
                format!("{:.2}", r.avg_targets),
                if r.precision_identical {
                    "identical ✓".into()
                } else {
                    "DIFFERS ✗".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "queries",
                "resolved",
                "demand total",
                "per query",
                "exhaustive",
                "speedup",
                "fires/query",
                "work d/e",
                "avg targets",
                "precision"
            ],
            &rows
        )
    );
}

fn t4(benches: &[Benchmark]) {
    println!("## T4 — Caching (memoization) ablation, ≤500 dereference queries\n");
    let rows: Vec<Vec<String>> = run_t4(benches, 500)
        .into_iter()
        .map(|r| {
            let speedup = r.time_uncached.as_secs_f64() / r.time_cached.as_secs_f64().max(1e-9);
            vec![
                r.name.to_owned(),
                count(r.queries),
                dur(r.time_cached),
                dur(r.time_uncached),
                ratio(speedup),
                count(r.work_cached as usize),
                count(r.work_uncached as usize),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "queries",
                "cached",
                "uncached",
                "speedup",
                "work cached",
                "work uncached"
            ],
            &rows
        )
    );
}

fn t5(benches: &[Benchmark]) {
    println!("## T5 — Server throughput (ddpa-serve over loopback, ≤200 queries)\n");
    let qps = |r: &T5Row, t: Duration| format!("{:.0}", r.qps(t));
    let rows: Vec<Vec<String>> = run_t5(benches, 200)
        .into_iter()
        .map(|r| {
            let warm_speedup =
                r.time_batch_cold.as_secs_f64() / r.time_batch_warm.as_secs_f64().max(1e-9);
            vec![
                r.name.to_owned(),
                count(r.queries),
                qps(&r, r.time_batch_cold),
                qps(&r, r.time_batch_warm),
                qps(&r, r.time_batch_parallel),
                qps(&r, r.time_sequential),
                ratio(warm_speedup),
                count(r.cache_hits as usize),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "queries",
                "batch cold q/s",
                "batch warm q/s",
                "batch parallel q/s",
                "sequential q/s",
                "warm speedup",
                "cache hits"
            ],
            &rows
        )
    );
}

fn f1(benches: &[Benchmark]) {
    println!("## F1 — Per-query cost distribution (rule firings, ≤1000 queries, no cache)\n");
    let rows: Vec<Vec<String>> = run_f1(benches, 1000)
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                count(r.work.count),
                count(r.work.min as usize),
                count(r.work.p50 as usize),
                count(r.work.p90 as usize),
                count(r.work.p99 as usize),
                count(r.work.max as usize),
                format!("{:.0}", r.work.mean()),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["program", "queries", "min", "p50", "p90", "p99", "max", "mean"],
            &rows
        )
    );
}

fn f2(benches: &[Benchmark]) {
    println!("## F2 — Cumulative demand time vs #queries (crossover against exhaustive)\n");
    let ks = [1usize, 2, 5, 10, 20, 50, 100, 200, 500, 1000];
    for row in run_f2(benches, &ks) {
        println!(
            "### {} (exhaustive = {})\n",
            row.name,
            dur(row.exhaustive_time)
        );
        let rows: Vec<Vec<String>> = row
            .points
            .iter()
            .map(|p| {
                let frac =
                    p.demand_time.as_secs_f64() / row.exhaustive_time.as_secs_f64().max(1e-9);
                vec![count(p.k), dur(p.demand_time), ratio(frac)]
            })
            .collect();
        println!(
            "{}",
            table(&["k queries", "demand cumulative", "vs exhaustive"], &rows)
        );
        match row.crossover_k {
            Some(k) => println!("crossover at k ≈ {k}\n"),
            None => println!("no crossover within the sampled range\n"),
        }
    }
}

fn f3(benches: &[Benchmark]) {
    println!("## F3 — Queries resolved within budget (≤500 queries per program)\n");
    let budgets = [10u64, 100, 1_000, 10_000, 100_000, 1_000_000];
    for row in run_f3(benches, &budgets, 500) {
        println!("### {}\n", row.name);
        let rows: Vec<Vec<String>> = row
            .points
            .iter()
            .map(|p| {
                vec![
                    count(p.budget as usize),
                    pct(p.resolved),
                    format!("{:.0}", p.avg_work),
                ]
            })
            .collect();
        println!(
            "{}",
            table(&["budget", "resolved", "avg work/query"], &rows)
        );
    }
}

fn a3(benches: &[Benchmark]) {
    println!("## A3 — Context-sensitivity (k-call-string cloning) ablation\n");
    for row in run_a3(benches, &[0, 1, 2]) {
        println!(
            "### {} (context-insensitive Σ|pts| = {})\n",
            row.name,
            count(row.ci_total_pts)
        );
        let rows: Vec<Vec<String>> = row
            .points
            .iter()
            .map(|p| {
                let gain = if row.ci_total_pts == 0 {
                    0.0
                } else {
                    1.0 - p.total_pts as f64 / row.ci_total_pts as f64
                };
                vec![
                    p.k.to_string(),
                    count(p.clones),
                    format!("{:.2}x", p.expansion),
                    dur(p.time),
                    count(p.total_pts),
                    pct(gain),
                ]
            })
            .collect();
        println!(
            "{}",
            table(
                &[
                    "k",
                    "clones",
                    "expansion",
                    "expand+solve",
                    "Σ|pts|",
                    "spurious facts removed"
                ],
                &rows
            )
        );
    }
}

fn a2(benches: &[Benchmark]) {
    println!("## A2 — Parallel query driver scaling (≤2000 queries per program)\n");
    let threads = [1usize, 2, 4, 8];
    for row in run_a2(benches, &threads, 2000) {
        println!("### {}\n", row.name);
        let rows: Vec<Vec<String>> = row
            .points
            .iter()
            .map(|(t, time, speedup)| vec![t.to_string(), dur(*time), ratio(*speedup)])
            .collect();
        println!("{}", table(&["threads", "time", "speedup"], &rows));
    }
}

// Silence the unused-import lint when only some sections are requested.
#[allow(dead_code)]
fn _unused(_: Duration) {}
