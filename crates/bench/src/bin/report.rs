//! Regenerates every table and figure of the evaluation as Markdown.
//!
//! ```text
//! report [--quick|--full] [--json-out <path>] [t1 t2 ... t9 f1 f2 f3 a2 ...]
//! report --history BENCH_A.json BENCH_B.json ...
//! ```
//!
//! With no experiment ids, all experiments run. `--quick` (default) uses
//! the small-suite prefix; `--full` runs the complete suite (minutes).
//! `--json-out <path>` additionally writes a machine-readable summary —
//! per-table medians of the headline metrics — as one JSON object.
//!
//! `--history` runs nothing: it reads several previously written
//! `--json-out` files (e.g. the committed `BENCH_*.json` series) and
//! prints one trajectory table per experiment, metrics as rows and one
//! column per input file, so headline numbers can be compared across PRs.

use std::time::Duration;

use ddpa_bench::render::{count, dur, pct, ratio, table};
use ddpa_bench::*;
use ddpa_gen::Benchmark;
use ddpa_obs::JsonValue;

/// Median of a sample (upper middle for even sizes); 0 when empty.
fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite metrics"));
    v[v.len() / 2]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--history") {
        let files: Vec<&str> = args
            .iter()
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .collect();
        history(&files);
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    let json_out: Option<String> = args
        .iter()
        .position(|a| a == "--json-out")
        .map(|i| args.get(i + 1).expect("--json-out needs a path").clone());
    let mut skip_next = false;
    let mut wanted: Vec<&str> = Vec::new();
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--json-out" {
            skip_next = true;
        } else if !a.starts_with("--") {
            wanted.push(a.as_str());
        }
    }
    let want = |id: &str| wanted.is_empty() || wanted.contains(&id);

    let benches: Vec<Benchmark> = if full {
        ddpa_gen::suite()
    } else {
        ddpa_gen::quick_suite()
    };
    // Dense-query experiments (every dereference site is a query) always
    // run on the quick suite: on the saturated large programs, inverse
    // (ptb) reasoning makes dense query sets far more expensive than the
    // sparse call-graph client measured by T3.
    let quick: Vec<Benchmark> = ddpa_gen::quick_suite();
    println!(
        "# ddpa evaluation report ({} suite: {})\n",
        if full { "full" } else { "quick" },
        benches
            .iter()
            .map(|b| b.name)
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut summary: Vec<(String, JsonValue)> = Vec::new();
    let mut run = |id: &str, section: &mut dyn FnMut() -> JsonValue| {
        if want(id) {
            summary.push((id.to_owned(), section()));
        }
    };
    run("t1", &mut || t1(&benches));
    run("t2", &mut || t2(&benches));
    run("t3", &mut || t3(&benches));
    run("t4", &mut || t4(&quick));
    run("t5", &mut || t5(&quick));
    run("t6", &mut || t6());
    run("t7", &mut || t7());
    run("t8", &mut || t8(&quick));
    run("t9", &mut || t9());
    run("t10", &mut || t10(full));
    run("t11", &mut || t11(full));
    run("f1", &mut || f1(&quick));
    run("f2", &mut || f2(&quick));
    run("f3", &mut || f3(&quick));
    run("a2", &mut || a2(&quick));
    run("a3", &mut || a3(&quick));

    if let Some(path) = json_out {
        let doc = obj(vec![
            ("suite", JsonValue::str(if full { "full" } else { "quick" })),
            ("tables", JsonValue::Object(summary)),
        ]);
        std::fs::write(&path, format!("{doc}\n")).expect("write --json-out file");
        eprintln!("wrote {path}");
    }
}

fn t1(benches: &[Benchmark]) -> JsonValue {
    println!("## T1 — Benchmark characteristics\n");
    let data = run_t1(benches);
    let med = obj(vec![
        (
            "nodes",
            JsonValue::F64(median(data.iter().map(|r| r.stats.nodes as f64).collect())),
        ),
        (
            "assignments",
            JsonValue::F64(median(
                data.iter().map(|r| r.stats.assignments() as f64).collect(),
            )),
        ),
    ]);
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                count(r.stats.nodes),
                count(r.stats.assignments()),
                count(r.stats.addr_ofs),
                count(r.stats.copies),
                count(r.stats.loads),
                count(r.stats.stores),
                count(r.stats.field_addrs),
                count(r.stats.funcs),
                count(r.stats.direct_calls),
                count(r.stats.indirect_calls),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "locations",
                "assignments",
                "addr-of",
                "copy",
                "load",
                "store",
                "field",
                "funcs",
                "direct calls",
                "indirect calls"
            ],
            &rows
        )
    );
    med
}

fn t2(benches: &[Benchmark]) -> JsonValue {
    println!("## T2 — Exhaustive (whole-program) analysis times; A1 — cycle-collapsing ablation\n");
    let data = run_t2(benches);
    let med = obj(vec![
        (
            "solve_ms",
            JsonValue::F64(median(data.iter().map(|r| ms(r.time)).collect())),
        ),
        (
            "solve_no_cycles_ms",
            JsonValue::F64(median(data.iter().map(|r| ms(r.time_no_cycles)).collect())),
        ),
        (
            "propagations",
            JsonValue::F64(median(
                data.iter().map(|r| r.stats.propagations as f64).collect(),
            )),
        ),
    ]);
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                dur(r.time),
                dur(r.time_no_cycles),
                count(r.stats.propagations as usize),
                count(r.stats.edges_added as usize),
                count(r.stats.nodes_collapsed as usize),
                count(r.total_pts),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "solve (cycles on)",
                "solve (cycles off)",
                "propagations",
                "edges",
                "collapsed",
                "Σ|pts|"
            ],
            &rows
        )
    );
    med
}

fn t3(benches: &[Benchmark]) -> JsonValue {
    println!("## T3 — Demand-driven indirect-call resolution vs exhaustive (budget ∞)\n");
    let data = run_t3(benches, None);
    let med = obj(vec![
        (
            "speedup",
            JsonValue::F64(median(data.iter().map(|r| r.speedup).collect())),
        ),
        (
            "fires_per_query",
            JsonValue::F64(median(data.iter().map(|r| r.fires_per_query).collect())),
        ),
        (
            "precision_identical",
            JsonValue::Bool(data.iter().all(|r| r.precision_identical)),
        ),
    ]);
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                count(r.queries),
                format!("{}/{}", r.resolved, r.queries),
                dur(r.demand_time),
                dur(r.avg_query_time),
                dur(r.exhaustive_time),
                ratio(r.speedup),
                format!("{:.1}", r.fires_per_query),
                match r.work_ratio {
                    Some(w) => format!(
                        "{}/{} ({w:.3}x)",
                        count(r.demand_work as usize),
                        count(r.exhaustive_work as usize)
                    ),
                    None => "n/a".into(),
                },
                format!("{:.2}", r.avg_targets),
                if r.precision_identical {
                    "identical ✓".into()
                } else {
                    "DIFFERS ✗".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "queries",
                "resolved",
                "demand total",
                "per query",
                "exhaustive",
                "speedup",
                "fires/query",
                "work d/e",
                "avg targets",
                "precision"
            ],
            &rows
        )
    );
    med
}

fn t4(benches: &[Benchmark]) -> JsonValue {
    println!("## T4 — Caching (memoization) ablation, ≤500 dereference queries\n");
    let data = run_t4(benches, 500);
    let med = obj(vec![
        (
            "work_cached",
            JsonValue::F64(median(data.iter().map(|r| r.work_cached as f64).collect())),
        ),
        (
            "work_uncached",
            JsonValue::F64(median(
                data.iter().map(|r| r.work_uncached as f64).collect(),
            )),
        ),
    ]);
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            let speedup = r.time_uncached.as_secs_f64() / r.time_cached.as_secs_f64().max(1e-9);
            vec![
                r.name.to_owned(),
                count(r.queries),
                dur(r.time_cached),
                dur(r.time_uncached),
                ratio(speedup),
                count(r.work_cached as usize),
                count(r.work_uncached as usize),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "queries",
                "cached",
                "uncached",
                "speedup",
                "work cached",
                "work uncached"
            ],
            &rows
        )
    );
    med
}

fn t5(benches: &[Benchmark]) -> JsonValue {
    println!("## T5 — Server throughput (ddpa-serve over loopback, ≤200 queries)\n");
    let qps = |r: &T5Row, t: Duration| format!("{:.0}", r.qps(t));
    let data = run_t5(benches, 200);
    let med = obj(vec![
        (
            "warm_qps",
            JsonValue::F64(median(
                data.iter().map(|r| r.qps(r.time_batch_warm)).collect(),
            )),
        ),
        (
            "cache_hits",
            JsonValue::F64(median(data.iter().map(|r| r.cache_hits as f64).collect())),
        ),
        (
            "seq_p99_us",
            JsonValue::F64(median(data.iter().map(|r| r.lat_p99_us as f64).collect())),
        ),
    ]);
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            let warm_speedup =
                r.time_batch_cold.as_secs_f64() / r.time_batch_warm.as_secs_f64().max(1e-9);
            vec![
                r.name.to_owned(),
                count(r.queries),
                qps(&r, r.time_batch_cold),
                qps(&r, r.time_batch_warm),
                qps(&r, r.time_batch_parallel),
                qps(&r, r.time_sequential),
                count(r.lat_p50_us as usize),
                count(r.lat_p95_us as usize),
                count(r.lat_p99_us as usize),
                ratio(warm_speedup),
                count(r.cache_hits as usize),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "queries",
                "batch cold q/s",
                "batch warm q/s",
                "batch parallel q/s",
                "sequential q/s",
                "seq p50 µs",
                "seq p95 µs",
                "seq p99 µs",
                "warm speedup",
                "cache hits"
            ],
            &rows
        )
    );
    med
}

fn t6() -> JsonValue {
    println!("## T6 — Online cycle collapsing (demand engine, cyclic suite)\n");
    let data = run_t6(&[4, 6, 8]);
    let med = obj(vec![
        (
            "work_on",
            JsonValue::F64(median(data.iter().map(|r| r.work_on as f64).collect())),
        ),
        (
            "work_off",
            JsonValue::F64(median(data.iter().map(|r| r.work_off as f64).collect())),
        ),
        (
            "work_reduction",
            JsonValue::F64(median(data.iter().map(|r| r.work_reduction()).collect())),
        ),
        (
            "fires_on",
            JsonValue::F64(median(data.iter().map(|r| r.fires_on as f64).collect())),
        ),
        (
            "fires_off",
            JsonValue::F64(median(data.iter().map(|r| r.fires_off as f64).collect())),
        ),
        (
            "cycles_collapsed",
            JsonValue::F64(median(
                data.iter().map(|r| r.cycles_collapsed as f64).collect(),
            )),
        ),
        (
            "merged_goals",
            JsonValue::F64(median(data.iter().map(|r| r.merged_goals as f64).collect())),
        ),
        (
            "identical",
            JsonValue::Bool(data.iter().all(|r| r.identical)),
        ),
    ]);
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.name.clone(),
                count(r.queries),
                count(r.work_on as usize),
                count(r.work_off as usize),
                ratio(r.work_reduction()),
                count(r.fires_on as usize),
                count(r.fires_off as usize),
                dur(r.time_on),
                dur(r.time_off),
                count(r.cycles_collapsed as usize),
                count(r.merged_goals as usize),
                if r.identical {
                    "identical ✓".into()
                } else {
                    "DIFFERS ✗".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "queries",
                "work (on)",
                "work (off)",
                "reduction",
                "fires (on)",
                "fires (off)",
                "time (on)",
                "time (off)",
                "cycles",
                "merged goals",
                "answers"
            ],
            &rows
        )
    );
    med
}

fn t7() -> JsonValue {
    println!("## T7 — Shared cross-worker memo table (4 simulated workers, cyclic suite)\n");
    let data = run_t7(&[4, 6, 8], 4);
    let med = obj(vec![
        (
            "fires_single",
            JsonValue::F64(median(data.iter().map(|r| r.fires_single as f64).collect())),
        ),
        (
            "fires_shared",
            JsonValue::F64(median(data.iter().map(|r| r.fires_shared as f64).collect())),
        ),
        (
            "fires_private",
            JsonValue::F64(median(
                data.iter().map(|r| r.fires_private as f64).collect(),
            )),
        ),
        (
            "shared_ratio",
            JsonValue::F64(median(data.iter().map(|r| r.shared_ratio()).collect())),
        ),
        (
            "private_ratio",
            JsonValue::F64(median(data.iter().map(|r| r.private_ratio()).collect())),
        ),
        (
            "share_hits",
            JsonValue::F64(median(data.iter().map(|r| r.share_hits as f64).collect())),
        ),
        (
            "share_publishes",
            JsonValue::F64(median(
                data.iter().map(|r| r.share_publishes as f64).collect(),
            )),
        ),
        (
            "identical",
            JsonValue::Bool(data.iter().all(|r| r.identical)),
        ),
    ]);
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.name.clone(),
                count(r.queries),
                r.workers.to_string(),
                count(r.fires_single as usize),
                count(r.fires_shared as usize),
                count(r.fires_private as usize),
                ratio(r.shared_ratio()),
                ratio(r.private_ratio()),
                count(r.share_hits as usize),
                count(r.share_publishes as usize),
                if r.identical {
                    "identical ✓".into()
                } else {
                    "DIFFERS ✗".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "queries",
                "workers",
                "fires (single)",
                "fires (shared)",
                "fires (private)",
                "shared/single",
                "private/single",
                "share hits",
                "publishes",
                "answers"
            ],
            &rows
        )
    );
    med
}

fn t8(benches: &[Benchmark]) -> JsonValue {
    println!("## T8 — Durable snapshots: cold vs restored time-to-first-answer\n");
    let data = run_t8(benches);
    let med = obj(vec![
        (
            "time_cold_ms",
            JsonValue::F64(median(data.iter().map(|r| ms(r.time_cold)).collect())),
        ),
        (
            "time_restored_ms",
            JsonValue::F64(median(data.iter().map(|r| ms(r.time_restored)).collect())),
        ),
        (
            "speedup",
            JsonValue::F64(median(data.iter().map(|r| r.speedup()).collect())),
        ),
        (
            "entries",
            JsonValue::F64(median(data.iter().map(|r| r.entries as f64).collect())),
        ),
        (
            "bytes",
            JsonValue::F64(median(data.iter().map(|r| r.bytes as f64).collect())),
        ),
        (
            "identical",
            JsonValue::Bool(data.iter().all(|r| r.identical)),
        ),
    ]);
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                count(r.queries),
                count(r.entries),
                count(r.bytes),
                dur(r.time_cold),
                dur(r.time_restored),
                ratio(r.speedup()),
                if r.identical {
                    "identical ✓".into()
                } else {
                    "DIFFERS ✗".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "queries",
                "fixpoints",
                "bytes",
                "cold",
                "restored",
                "speedup",
                "answers"
            ],
            &rows
        )
    );
    med
}

fn t9() -> JsonValue {
    println!("## T9 — Flight recorder overhead + critical-path headroom (cyclic suite)\n");
    // Best-of-9: single runs are ~1ms, so scheduler noise would swamp
    // the few-percent recorder overhead at fewer repeats.
    let data = run_t9(&[4, 6, 8], 9);
    let med = obj(vec![
        (
            "work",
            JsonValue::F64(median(data.iter().map(|r| r.work as f64).collect())),
        ),
        (
            "span",
            JsonValue::F64(median(data.iter().map(|r| r.span as f64).collect())),
        ),
        (
            "headroom",
            JsonValue::F64(median(data.iter().map(|r| r.headroom).collect())),
        ),
        (
            "flight_recorded",
            JsonValue::F64(median(
                data.iter().map(|r| r.flight_recorded as f64).collect(),
            )),
        ),
        (
            "overhead",
            JsonValue::F64(median(data.iter().map(|r| r.overhead()).collect())),
        ),
        (
            "identical",
            JsonValue::Bool(data.iter().all(|r| r.identical)),
        ),
    ]);
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.name.clone(),
                count(r.queries),
                count(r.work as usize),
                count(r.span as usize),
                ratio(r.headroom),
                count(r.goals),
                count(r.edges),
                count(r.flight_recorded as usize),
                count(r.flight_dropped as usize),
                dur(r.time_off),
                dur(r.time_on),
                format!("{:+.1}%", r.overhead() * 100.0),
                if r.identical {
                    "identical ✓".into()
                } else {
                    "DIFFERS ✗".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "queries",
                "W (work)",
                "S (span)",
                "W/S",
                "goals",
                "edges",
                "recorded",
                "dropped",
                "time (off)",
                "time (on)",
                "overhead",
                "answers"
            ],
            &rows
        )
    );
    med
}

fn t10(full: bool) -> JsonValue {
    // At least two workers even on a single-core host: the scheduler
    // path is only taken at workers > 1, and even there it wins on wide
    // programs because frames run collapse-off (the fire-once discipline
    // bounds work without the sequential engine's periodic cycle scans).
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(2);
    println!(
        "## T10 — Intra-query parallel scheduler at max threads ({workers} workers), next to the T9 W/S bound\n"
    );
    // The wide suite is the headroom-rich regime (T9's W/S ≫ 1); the
    // cyclic rows pin down that speedup tracks headroom, not threads.
    let data = if full {
        run_t10(&[1_500, 4_000, 12_000], &[6, 8], workers, 5)
    } else {
        run_t10(&[1_500, 4_000], &[6], workers, 5)
    };
    let rich: Vec<&T10Row> = data.iter().filter(|r| r.headroom > 1.5).collect();
    let med = obj(vec![
        ("workers", JsonValue::U64(workers as u64)),
        (
            "headroom",
            JsonValue::F64(median(data.iter().map(|r| r.headroom).collect())),
        ),
        (
            "speedup",
            JsonValue::F64(median(data.iter().map(|r| r.speedup()).collect())),
        ),
        (
            "rich_headroom_speedup",
            JsonValue::F64(median(rich.iter().map(|r| r.speedup()).collect())),
        ),
        (
            "work_ratio",
            JsonValue::F64(median(data.iter().map(|r| r.work_ratio()).collect())),
        ),
        (
            "steals",
            JsonValue::F64(median(data.iter().map(|r| r.steals as f64).collect())),
        ),
        (
            "identical",
            JsonValue::Bool(data.iter().all(|r| r.identical)),
        ),
    ]);
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("pts({})", r.query),
                r.workers.to_string(),
                ratio(r.headroom),
                dur(r.time_seq),
                dur(r.time_par),
                ratio(r.speedup()),
                count(r.work_seq as usize),
                count(r.work_par as usize),
                format!("{:.3}x", r.work_ratio()),
                count(r.steals as usize),
                count(r.parked as usize),
                count(r.wakeups as usize),
                if r.identical {
                    "identical ✓".into()
                } else {
                    "DIFFERS ✗".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "program",
                "query",
                "workers",
                "W/S bound",
                "sequential",
                "parallel",
                "speedup",
                "work seq",
                "work par",
                "work ratio",
                "steals",
                "parked",
                "wakeups",
                "answers"
            ],
            &rows
        )
    );
    med
}

fn t11(full: bool) -> JsonValue {
    println!("## T11 — Edit-heavy sessions: selective invalidation vs full reload\n");
    // Disjoint copy chains; each edit repoints one chain head, so the
    // support-set machinery should keep (chains-1)/chains of the table
    // warm per edit and the re-answer pass should beat a cold engine.
    let data = if full {
        run_t11(&[(16, 64), (48, 96), (96, 128)], 12, 3)
    } else {
        run_t11(&[(16, 64), (48, 96)], 8, 3)
    };
    let med = obj(vec![
        (
            "retained_frac",
            JsonValue::F64(median(data.iter().map(|r| r.retained_frac).collect())),
        ),
        (
            "speedup",
            JsonValue::F64(median(data.iter().map(|r| r.speedup()).collect())),
        ),
        (
            "time_incremental_ms",
            JsonValue::F64(median(
                data.iter().map(|r| ms(r.time_incremental)).collect(),
            )),
        ),
        (
            "time_full_ms",
            JsonValue::F64(median(data.iter().map(|r| ms(r.time_full)).collect())),
        ),
        (
            "identical",
            JsonValue::Bool(data.iter().all(|r| r.identical)),
        ),
    ]);
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.edits.to_string(),
                r.queries.to_string(),
                pct(r.retained_frac),
                count(r.retained),
                count(r.invalidated),
                dur(r.time_incremental),
                dur(r.time_full),
                ratio(r.speedup()),
                if r.identical {
                    "identical ✓".into()
                } else {
                    "DIFFERS ✗".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "workload",
                "edits",
                "queries/edit",
                "retained",
                "goals kept",
                "goals dirtied",
                "incremental",
                "full reload",
                "speedup",
                "answers"
            ],
            &rows
        )
    );
    med
}

fn f1(benches: &[Benchmark]) -> JsonValue {
    println!("## F1 — Per-query cost distribution (rule firings, ≤1000 queries, no cache)\n");
    let data = run_f1(benches, 1000);
    let med = obj(vec![(
        "p50_work",
        JsonValue::F64(median(data.iter().map(|r| r.work.p50 as f64).collect())),
    )]);
    let rows: Vec<Vec<String>> = data
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                count(r.work.count),
                count(r.work.min as usize),
                count(r.work.p50 as usize),
                count(r.work.p90 as usize),
                count(r.work.p99 as usize),
                count(r.work.max as usize),
                format!("{:.0}", r.work.mean()),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["program", "queries", "min", "p50", "p90", "p99", "max", "mean"],
            &rows
        )
    );
    med
}

fn f2(benches: &[Benchmark]) -> JsonValue {
    println!("## F2 — Cumulative demand time vs #queries (crossover against exhaustive)\n");
    let ks = [1usize, 2, 5, 10, 20, 50, 100, 200, 500, 1000];
    let data = run_f2(benches, &ks);
    let med = obj(vec![(
        "exhaustive_ms",
        JsonValue::F64(median(data.iter().map(|r| ms(r.exhaustive_time)).collect())),
    )]);
    for row in data {
        println!(
            "### {} (exhaustive = {})\n",
            row.name,
            dur(row.exhaustive_time)
        );
        let rows: Vec<Vec<String>> = row
            .points
            .iter()
            .map(|p| {
                let frac =
                    p.demand_time.as_secs_f64() / row.exhaustive_time.as_secs_f64().max(1e-9);
                vec![count(p.k), dur(p.demand_time), ratio(frac)]
            })
            .collect();
        println!(
            "{}",
            table(&["k queries", "demand cumulative", "vs exhaustive"], &rows)
        );
        match row.crossover_k {
            Some(k) => println!("crossover at k ≈ {k}\n"),
            None => println!("no crossover within the sampled range\n"),
        }
    }
    med
}

fn f3(benches: &[Benchmark]) -> JsonValue {
    println!("## F3 — Queries resolved within budget (≤500 queries per program)\n");
    let budgets = [10u64, 100, 1_000, 10_000, 100_000, 1_000_000];
    let data = run_f3(benches, &budgets, 500);
    let med = obj(vec![(
        "max_budget_resolved",
        JsonValue::F64(median(
            data.iter()
                .filter_map(|r| r.points.last().map(|p| p.resolved))
                .collect(),
        )),
    )]);
    for row in data {
        println!("### {}\n", row.name);
        let rows: Vec<Vec<String>> = row
            .points
            .iter()
            .map(|p| {
                vec![
                    count(p.budget as usize),
                    pct(p.resolved),
                    format!("{:.0}", p.avg_work),
                ]
            })
            .collect();
        println!(
            "{}",
            table(&["budget", "resolved", "avg work/query"], &rows)
        );
    }
    med
}

fn a3(benches: &[Benchmark]) -> JsonValue {
    println!("## A3 — Context-sensitivity (k-call-string cloning) ablation\n");
    let data = run_a3(benches, &[0, 1, 2]);
    let med = obj(vec![(
        "ci_total_pts",
        JsonValue::F64(median(data.iter().map(|r| r.ci_total_pts as f64).collect())),
    )]);
    for row in data {
        println!(
            "### {} (context-insensitive Σ|pts| = {})\n",
            row.name,
            count(row.ci_total_pts)
        );
        let rows: Vec<Vec<String>> = row
            .points
            .iter()
            .map(|p| {
                let gain = if row.ci_total_pts == 0 {
                    0.0
                } else {
                    1.0 - p.total_pts as f64 / row.ci_total_pts as f64
                };
                vec![
                    p.k.to_string(),
                    count(p.clones),
                    format!("{:.2}x", p.expansion),
                    dur(p.time),
                    count(p.total_pts),
                    pct(gain),
                ]
            })
            .collect();
        println!(
            "{}",
            table(
                &[
                    "k",
                    "clones",
                    "expansion",
                    "expand+solve",
                    "Σ|pts|",
                    "spurious facts removed"
                ],
                &rows
            )
        );
    }
    med
}

fn a2(benches: &[Benchmark]) -> JsonValue {
    println!("## A2 — Parallel query driver scaling (≤2000 queries per program)\n");
    let threads = [1usize, 2, 4, 8];
    let data = run_a2(benches, &threads, 2000);
    let med = obj(vec![(
        "max_threads_speedup",
        JsonValue::F64(median(
            data.iter()
                .filter_map(|r| r.points.last().map(|&(_, _, s)| s))
                .collect(),
        )),
    )]);
    for row in data {
        println!("### {}\n", row.name);
        let rows: Vec<Vec<String>> = row
            .points
            .iter()
            .map(|(t, time, speedup)| vec![t.to_string(), dur(*time), ratio(*speedup)])
            .collect();
        println!("{}", table(&["threads", "time", "speedup"], &rows));
    }
    med
}

/// Prints per-experiment trajectory tables from several `--json-out`
/// summaries (metric rows × one column per file, in argument order).
/// The heavy lifting lives in [`ddpa_bench::history`] so files missing
/// newer experiments are tolerated and the rendering is unit-tested.
fn history(files: &[&str]) {
    assert!(
        !files.is_empty(),
        "usage: report --history <summary.json> [more.json ...]"
    );
    let docs = ddpa_bench::history::load_summaries(files).unwrap_or_else(|e| panic!("{e}"));
    print!("{}", ddpa_bench::history::trajectory(&docs));
}

// Silence the unused-import lint when only some sections are requested.
#[allow(dead_code)]
fn _unused(_: Duration) {}
