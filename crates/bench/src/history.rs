//! The `--history` trajectory report: compares several `--json-out`
//! summaries (the committed `BENCH_*.json` series) experiment by
//! experiment, so headline numbers can be tracked across PRs.

use ddpa_obs::JsonValue;

use crate::render::table;

/// Loads `--json-out` summary files into `(label, document)` pairs.
///
/// The label is the file name with any `.json` suffix stripped
/// (`target/BENCH_3.json` → `BENCH_3`). Unreadable or syntactically
/// invalid files fail the whole load with a message naming the file — a
/// half-rendered trajectory would silently compare the wrong columns.
pub fn load_summaries(files: &[&str]) -> Result<Vec<(String, JsonValue)>, String> {
    files
        .iter()
        .map(|path| {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let doc = ddpa_obs::parse_json(&text)
                .map_err(|e| format!("`{path}` is not valid JSON: {e}"))?;
            Ok((label_of(path), doc))
        })
        .collect()
}

/// The column label for a summary path: the final path component with
/// its `.json` suffix stripped.
fn label_of(path: &str) -> String {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".json")
        .to_owned()
}

/// Renders one numeric (or boolean) summary value for the history table.
fn cell(v: &JsonValue) -> String {
    match v {
        JsonValue::U64(n) => format!("{n}"),
        JsonValue::F64(x) => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{x:.0}")
            } else {
                format!("{x:.3}")
            }
        }
        JsonValue::Bool(b) => (if *b { "✓" } else { "✗" }).to_owned(),
        JsonValue::Str(s) => s.clone(),
        _ => "·".to_owned(),
    }
}

/// Renders per-experiment trajectory tables: metric rows × one column
/// per summary, in argument order.
///
/// Summaries from different eras need not agree on coverage: a file
/// missing an experiment (older summaries predate newer tables) or
/// missing a metric within one renders as `·` in that column instead of
/// failing, and experiment/metric order is first-seen across all files.
pub fn trajectory(docs: &[(String, JsonValue)]) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# ddpa benchmark trajectory ({} summaries)\n",
        docs.len()
    );

    // Experiment ids in first-seen order across all files.
    let mut ids: Vec<String> = Vec::new();
    for (_, doc) in docs {
        if let Some(JsonValue::Object(tables)) = doc.get("tables") {
            for (id, _) in tables {
                if !ids.iter().any(|k| k == id) {
                    ids.push(id.clone());
                }
            }
        }
    }

    for id in &ids {
        // Metric names in first-seen order across all files.
        let mut metrics: Vec<String> = Vec::new();
        for (_, doc) in docs {
            if let Some(JsonValue::Object(fields)) = doc.get("tables").and_then(|t| t.get(id)) {
                for (m, _) in fields {
                    if !metrics.iter().any(|k| k == m) {
                        metrics.push(m.clone());
                    }
                }
            }
        }
        if metrics.is_empty() {
            continue;
        }
        let _ = writeln!(out, "## {id}\n");
        let mut header: Vec<&str> = vec!["metric"];
        header.extend(docs.iter().map(|(label, _)| label.as_str()));
        let rows: Vec<Vec<String>> = metrics
            .iter()
            .map(|m| {
                let mut row = vec![m.clone()];
                for (_, doc) in docs {
                    let value = doc
                        .get("tables")
                        .and_then(|t| t.get(id))
                        .and_then(|fields| fields.get(m))
                        .map(cell)
                        .unwrap_or_else(|| "·".to_owned());
                    row.push(value);
                }
                row
            })
            .collect();
        let _ = writeln!(out, "{}", table(&header, &rows));
    }
    out.push_str(&parallelism_section(docs));
    out
}

/// The T9-vs-T10 cross-cut: the critical-path `W/S` *bound* next to the
/// speedup the frame scheduler actually *measured*, one column per
/// summary. Rendered only when at least one summary carries either
/// table; absent values dot out as everywhere else.
fn parallelism_section(docs: &[(String, JsonValue)]) -> String {
    use std::fmt::Write as _;

    let lookup = |doc: &JsonValue, id: &str, metric: &str| {
        doc.get("tables")
            .and_then(|t| t.get(id))
            .and_then(|fields| fields.get(metric))
            .map(cell)
    };
    let rows_spec: [(&str, &str, &str); 5] = [
        ("T9 W/S headroom (bound)", "t9", "headroom"),
        ("T10 measured speedup", "t10", "speedup"),
        (
            "T10 speedup (W/S > 1.5 rows)",
            "t10",
            "rich_headroom_speedup",
        ),
        ("T10 workers", "t10", "workers"),
        ("T10 work ratio (par/seq)", "t10", "work_ratio"),
    ];
    if !docs.iter().any(|(_, doc)| {
        rows_spec
            .iter()
            .any(|(_, id, m)| lookup(doc, id, m).is_some())
    }) {
        return String::new();
    }
    let mut out = String::new();
    let _ = writeln!(out, "## parallelism — headroom bound vs measured speedup\n");
    let mut header: Vec<&str> = vec!["metric"];
    header.extend(docs.iter().map(|(label, _)| label.as_str()));
    let rows: Vec<Vec<String>> = rows_spec
        .iter()
        .map(|(label, id, metric)| {
            let mut row = vec![(*label).to_owned()];
            for (_, doc) in docs {
                row.push(lookup(doc, id, metric).unwrap_or_else(|| "·".to_owned()));
            }
            row
        })
        .collect();
    let _ = writeln!(out, "{}", table(&header, &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(tables: Vec<(&str, Vec<(&str, JsonValue)>)>) -> JsonValue {
        JsonValue::Object(vec![
            ("suite".to_owned(), JsonValue::str("quick")),
            (
                "tables".to_owned(),
                JsonValue::Object(
                    tables
                        .into_iter()
                        .map(|(id, fields)| {
                            (
                                id.to_owned(),
                                JsonValue::Object(
                                    fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn tolerates_files_missing_an_experiment() {
        // The older summary predates t9; its column renders as dots
        // instead of failing the whole report.
        let old = doc(vec![("t6", vec![("work_on", JsonValue::F64(100.0))])]);
        let new = doc(vec![
            ("t6", vec![("work_on", JsonValue::F64(80.0))]),
            (
                "t9",
                vec![
                    ("headroom", JsonValue::F64(2.5)),
                    ("identical", JsonValue::Bool(true)),
                ],
            ),
        ]);
        let out = trajectory(&[("BENCH_old".into(), old), ("BENCH_new".into(), new)]);
        assert!(out.contains("## t6"), "got: {out}");
        assert!(out.contains("## t9"), "got: {out}");
        assert!(out.contains("headroom"), "got: {out}");
        let t9_section = out.split("## t9").nth(1).expect("t9 section");
        assert!(
            t9_section.contains('·'),
            "missing column dotted: {t9_section}"
        );
        assert!(t9_section.contains("2.500"), "got: {t9_section}");
        assert!(t9_section.contains('✓'), "got: {t9_section}");
    }

    #[test]
    fn tolerates_metrics_added_later_within_an_experiment() {
        let old = doc(vec![("t6", vec![("work_on", JsonValue::F64(100.0))])]);
        let new = doc(vec![(
            "t6",
            vec![
                ("work_on", JsonValue::F64(80.0)),
                ("merged_goals", JsonValue::F64(12.0)),
            ],
        )]);
        let out = trajectory(&[("a".into(), old), ("b".into(), new)]);
        let merged_row = out
            .lines()
            .find(|l| l.contains("merged_goals"))
            .expect("new metric row present");
        assert!(merged_row.contains('·'), "got: {merged_row}");
        assert!(merged_row.contains("12"), "got: {merged_row}");
    }

    #[test]
    fn parallelism_section_pairs_t9_bound_with_t10_measurement() {
        let old = doc(vec![("t9", vec![("headroom", JsonValue::F64(2.5))])]);
        let new = doc(vec![
            ("t9", vec![("headroom", JsonValue::F64(3.1))]),
            (
                "t10",
                vec![
                    ("workers", JsonValue::U64(8)),
                    ("speedup", JsonValue::F64(2.2)),
                    ("rich_headroom_speedup", JsonValue::F64(2.9)),
                    ("work_ratio", JsonValue::F64(1.0)),
                ],
            ),
        ]);
        let out = trajectory(&[("BENCH_old".into(), old), ("BENCH_new".into(), new)]);
        let section = out
            .split("## parallelism")
            .nth(1)
            .expect("cross-cut section present");
        assert!(section.contains("T9 W/S headroom"), "got: {section}");
        assert!(section.contains("T10 measured speedup"), "got: {section}");
        assert!(section.contains("2.500"), "the bound column: {section}");
        assert!(section.contains("2.200"), "the measured column: {section}");
        let speedup_row = section
            .lines()
            .find(|l| l.contains("T10 measured speedup"))
            .expect("speedup row");
        assert!(
            speedup_row.contains('·'),
            "pre-T10 summaries dot out: {speedup_row}"
        );
    }

    #[test]
    fn no_parallelism_section_without_either_table() {
        let only_t6 = doc(vec![("t6", vec![("work_on", JsonValue::F64(1.0))])]);
        let out = trajectory(&[("a".into(), only_t6)]);
        assert!(!out.contains("## parallelism"), "got: {out}");
    }

    #[test]
    fn labels_strip_directory_and_extension() {
        assert_eq!(label_of("target/bench/BENCH_3.json"), "BENCH_3");
        assert_eq!(label_of("BENCH_3.json"), "BENCH_3");
        assert_eq!(label_of("plain"), "plain");
    }

    #[test]
    fn load_rejects_unreadable_and_invalid_files() {
        let e = load_summaries(&["/nonexistent/summary.json"]).expect_err("missing file");
        assert!(e.contains("cannot read"), "got: {e}");

        let dir = std::env::temp_dir().join("ddpa-bench-history-tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{not json").expect("write");
        let e = load_summaries(&[bad.to_str().expect("utf8 path")]).expect_err("invalid json");
        assert!(e.contains("not valid JSON"), "got: {e}");
    }
}
