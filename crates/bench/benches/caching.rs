//! T4 — cross-query memoization ablation: the same query batch with the
//! memo table kept vs cleared between queries. Plain std timing harness.

use std::time::Instant;

use ddpa_bench::deref_queries;
use ddpa_demand::{DemandConfig, DemandEngine};

fn time_min<F: FnMut()>(iters: usize, mut f: F) -> std::time::Duration {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("at least one iteration")
}

fn main() {
    println!("T4_caching (min of 5 runs)");
    for bench in ddpa_gen::quick_suite() {
        let cp = bench.build();
        let queries: Vec<_> = deref_queries(&cp).into_iter().take(200).collect();
        let cached = time_min(5, || {
            let mut engine = DemandEngine::new(&cp, DemandConfig::default());
            for &q in &queries {
                let _ = engine.points_to(q);
            }
        });
        let uncached = time_min(5, || {
            let mut engine = DemandEngine::new(&cp, DemandConfig::default().without_caching());
            for &q in &queries {
                let _ = engine.points_to(q);
            }
        });
        println!(
            "  {:<12} cached {:>12?}  uncached {:>12?}",
            bench.name, cached, uncached
        );
    }
}
