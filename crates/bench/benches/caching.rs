//! T4 — cross-query memoization ablation: the same query batch with the
//! memo table kept vs cleared between queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ddpa_bench::deref_queries;
use ddpa_demand::{DemandConfig, DemandEngine};

fn bench_caching(c: &mut Criterion) {
    let mut group = c.benchmark_group("T4_caching");
    group.sample_size(10);
    for bench in ddpa_gen::quick_suite() {
        let cp = bench.build();
        let queries: Vec<_> = deref_queries(&cp).into_iter().take(200).collect();
        group.bench_with_input(BenchmarkId::new("cached", bench.name), &cp, |b, cp| {
            b.iter(|| {
                let mut engine = DemandEngine::new(cp, DemandConfig::default());
                for &q in &queries {
                    let _ = engine.points_to(q);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("uncached", bench.name), &cp, |b, cp| {
            b.iter(|| {
                let mut engine =
                    DemandEngine::new(cp, DemandConfig::default().without_caching());
                for &q in &queries {
                    let _ = engine.points_to(q);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_caching);
criterion_main!(benches);
