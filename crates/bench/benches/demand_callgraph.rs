//! T3 — demand-driven call-graph construction (the paper's client):
//! resolve every indirect call site on demand, against the exhaustive
//! route. Plain std timing harness; minimum of a fixed run count.

use std::time::Instant;

use ddpa_callgraph::CallGraph;
use ddpa_demand::{DemandConfig, DemandEngine};

fn time_min<F: FnMut()>(iters: usize, mut f: F) -> std::time::Duration {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("at least one iteration")
}

fn main() {
    println!("T3_callgraph (min of 5 runs)");
    for bench in ddpa_gen::quick_suite() {
        let cp = bench.build();
        let demand = time_min(5, || {
            let mut engine = DemandEngine::new(&cp, DemandConfig::default());
            let _ = CallGraph::from_demand(&mut engine);
        });
        let exhaustive = time_min(5, || {
            let solution = ddpa_anders::solve(&cp);
            let _ = CallGraph::from_exhaustive(&cp, &solution);
        });
        println!(
            "  {:<12} demand {:>12?}  exhaustive {:>12?}",
            bench.name, demand, exhaustive
        );
    }
}
