//! T3 — demand-driven call-graph construction (the paper's client):
//! resolve every indirect call site on demand, against the exhaustive
//! route.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ddpa_callgraph::CallGraph;
use ddpa_demand::{DemandConfig, DemandEngine};

fn bench_demand_callgraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("T3_callgraph");
    group.sample_size(10);
    for bench in ddpa_gen::quick_suite() {
        let cp = bench.build();
        group.bench_with_input(BenchmarkId::new("demand", bench.name), &cp, |b, cp| {
            b.iter(|| {
                let mut engine = DemandEngine::new(cp, DemandConfig::default());
                CallGraph::from_demand(&mut engine)
            })
        });
        group.bench_with_input(BenchmarkId::new("exhaustive", bench.name), &cp, |b, cp| {
            b.iter(|| {
                let solution = ddpa_anders::solve(cp);
                CallGraph::from_exhaustive(cp, &solution)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_demand_callgraph);
criterion_main!(benches);
