//! T2/A1 — exhaustive Andersen solve times, with and without cycle
//! collapsing, across the quick suite. Plain std timing harness (no
//! external bench framework): each case is run a fixed number of times
//! and the minimum wall time is reported.

use std::time::Instant;

use ddpa_anders::{worklist, SolverConfig};

fn time_min<F: FnMut()>(iters: usize, mut f: F) -> std::time::Duration {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("at least one iteration")
}

fn main() {
    println!("T2_exhaustive (min of 5 runs)");
    for bench in ddpa_gen::quick_suite() {
        let cp = bench.build();
        let on = time_min(5, || {
            let _ = worklist::solve(&cp, &SolverConfig::default());
        });
        let off = time_min(5, || {
            let _ = worklist::solve(&cp, &SolverConfig::without_cycle_elimination());
        });
        let wave = time_min(5, || {
            let _ = ddpa_anders::wave::solve(&cp);
        });
        println!(
            "  {:<12} cycles_on {:>12?}  cycles_off_A1 {:>12?}  wave {:>12?}",
            bench.name, on, off, wave
        );
    }
}
