//! T2/A1 — exhaustive Andersen solve times, with and without cycle
//! collapsing, across the quick suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ddpa_anders::{worklist, SolverConfig};

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("T2_exhaustive");
    group.sample_size(10);
    for bench in ddpa_gen::quick_suite() {
        let cp = bench.build();
        group.bench_with_input(BenchmarkId::new("cycles_on", bench.name), &cp, |b, cp| {
            b.iter(|| worklist::solve(cp, &SolverConfig::default()))
        });
        group.bench_with_input(
            BenchmarkId::new("cycles_off_A1", bench.name),
            &cp,
            |b, cp| b.iter(|| worklist::solve(cp, &SolverConfig::without_cycle_elimination())),
        );
        group.bench_with_input(BenchmarkId::new("wave", bench.name), &cp, |b, cp| {
            b.iter(|| ddpa_anders::wave::solve(cp))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exhaustive);
criterion_main!(benches);
