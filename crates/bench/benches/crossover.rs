//! F2 — cumulative demand time for k queries vs the exhaustive constant:
//! where does on-demand stop paying off? Plain std timing harness.

use std::time::Instant;

use ddpa_bench::deref_queries;
use ddpa_demand::{DemandConfig, DemandEngine};

fn time_min<F: FnMut()>(iters: usize, mut f: F) -> std::time::Duration {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("at least one iteration")
}

fn main() {
    println!("F2_crossover (min of 5 runs)");
    let bench = ddpa_gen::quick_suite()
        .into_iter()
        .last()
        .expect("quick suite nonempty");
    let cp = bench.build();
    let queries = deref_queries(&cp);

    let exhaustive = time_min(5, || {
        let _ = ddpa_anders::solve(&cp);
    });
    println!("  {:<12} exhaustive {:>12?}", bench.name, exhaustive);
    for k in [1usize, 10, 100, 1000] {
        let k = k.min(queries.len());
        let demand = time_min(5, || {
            let mut engine = DemandEngine::new(&cp, DemandConfig::default());
            for &q in &queries[..k] {
                let _ = engine.points_to(q);
            }
        });
        println!("  {:<12} demand_k{k:<5} {:>12?}", bench.name, demand);
    }
}
