//! F2 — cumulative demand time for k queries vs the exhaustive constant:
//! where does on-demand stop paying off?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ddpa_bench::deref_queries;
use ddpa_demand::{DemandConfig, DemandEngine};

fn bench_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("F2_crossover");
    group.sample_size(10);
    let bench = ddpa_gen::quick_suite()
        .into_iter()
        .last()
        .expect("quick suite nonempty");
    let cp = bench.build();
    let queries = deref_queries(&cp);

    group.bench_function(BenchmarkId::new("exhaustive", bench.name), |b| {
        b.iter(|| ddpa_anders::solve(&cp))
    });
    for k in [1usize, 10, 100, 1000] {
        let k = k.min(queries.len());
        group.bench_function(BenchmarkId::new(format!("demand_k{k}"), bench.name), |b| {
            b.iter(|| {
                let mut engine = DemandEngine::new(&cp, DemandConfig::default());
                for &q in &queries[..k] {
                    let _ = engine.points_to(q);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
