//! The production exhaustive solver: difference propagation over a growing
//! copy-edge graph, with an on-the-fly call graph and optional periodic
//! cycle collapsing.
//!
//! The algorithm is the standard inclusion-based worklist scheme:
//!
//! 1. Seed `pts` from `x = &o` constraints.
//! 2. Pop a node `n` with a non-empty delta Δ.
//! 3. For every `dst = *n`, add a copy edge `o → dst` for each `o ∈ Δ`;
//!    for every `*n = src`, add `src → o`; if `o` is a function object and
//!    `n` feeds indirect call sites, wire the call's argument/return edges.
//! 4. Propagate Δ along `n`'s copy edges.
//!
//! With [`SolverConfig::cycle_elimination`] enabled, a Tarjan pass runs
//! every ~`num_nodes` propagations and collapses copy-edge cycles with
//! union-find — the pointer-equivalence optimization the literature shows
//! is essential on large constraint graphs.

use std::collections::{HashSet, VecDeque};

use ddpa_obs::Obs;
use ddpa_support::scc::tarjan;
use ddpa_support::{HybridSet, IndexVec, UnionFind};

use ddpa_constraints::{CallSiteId, CalleeRef, ConstraintProgram, FuncId, NodeId};

use crate::solution::Solution;

/// Configuration for [`solve`].
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Collapse copy-edge cycles periodically (on by default).
    pub cycle_elimination: bool,
    /// Run a collapse pass every this-many propagations (0 = auto:
    /// the number of nodes in the program).
    pub collapse_interval: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            cycle_elimination: true,
            collapse_interval: 0,
        }
    }
}

impl SolverConfig {
    /// A configuration with cycle collapsing disabled (the ablation
    /// baseline).
    pub fn without_cycle_elimination() -> Self {
        SolverConfig {
            cycle_elimination: false,
            collapse_interval: 0,
        }
    }
}

/// Work counters reported by [`solve`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Worklist pops with a non-empty delta.
    pub propagations: u64,
    /// Points-to elements moved across copy edges.
    pub elements_propagated: u64,
    /// Copy edges added (static + derived).
    pub edges_added: u64,
    /// Cycle-collapse passes executed.
    pub scc_passes: u64,
    /// Nodes merged away by collapsing.
    pub nodes_collapsed: u64,
    /// Resolved (call site, callee) pairs.
    pub calls_wired: u64,
}

/// Solves `cp` exhaustively; returns the solution and work counters.
pub fn solve(cp: &ConstraintProgram, config: &SolverConfig) -> (Solution, SolveStats) {
    solve_with_obs(cp, config, &Obs::new())
}

/// Like [`solve`], but publishes the work counters into `obs` (under
/// `anders.worklist.*`) and times each phase when profiling is on.
pub fn solve_with_obs(
    cp: &ConstraintProgram,
    config: &SolverConfig,
    obs: &Obs,
) -> (Solution, SolveStats) {
    let _span = obs.span("anders.worklist");
    let engine = {
        let _init = obs.span("anders.worklist.init");
        Engine::new(cp, config, obs.clone())
    };
    let (solution, stats) = engine.run();
    obs.counter("anders.worklist.propagations")
        .add(stats.propagations);
    obs.counter("anders.worklist.elements_propagated")
        .add(stats.elements_propagated);
    obs.counter("anders.worklist.edges_added")
        .add(stats.edges_added);
    obs.counter("anders.worklist.scc_passes")
        .add(stats.scc_passes);
    obs.counter("anders.worklist.nodes_collapsed")
        .add(stats.nodes_collapsed);
    obs.counter("anders.worklist.calls_wired")
        .add(stats.calls_wired);
    // Comparable to `demand.work`: the exhaustive propagation volume.
    obs.counter("anders.work")
        .add(stats.elements_propagated + stats.edges_added);
    (solution, stats)
}

struct Engine<'p> {
    cp: &'p ConstraintProgram,
    config: SolverConfig,
    uf: UnionFind,
    pts: IndexVec<NodeId, HybridSet>,
    delta: IndexVec<NodeId, HybridSet>,
    /// Copy successors (`src → dst`), sorted for dedup; valid at reps.
    succs: IndexVec<NodeId, Vec<NodeId>>,
    /// Destinations of loads through the node (`dst = *n`); valid at reps.
    loads_from: IndexVec<NodeId, Vec<NodeId>>,
    /// Sources of stores through the node (`*n = src`); valid at reps.
    stores_from: IndexVec<NodeId, Vec<NodeId>>,
    /// Field addresses taken through the node (`dst = &n->field`); at reps.
    fields_from: IndexVec<NodeId, Vec<(u32, NodeId)>>,
    /// Indirect call sites using the node as function pointer; at reps.
    fp_sites: IndexVec<NodeId, Vec<CallSiteId>>,
    wired: HashSet<(CallSiteId, FuncId)>,
    call_targets: IndexVec<CallSiteId, Vec<FuncId>>,
    worklist: VecDeque<NodeId>,
    on_list: IndexVec<NodeId, bool>,
    stats: SolveStats,
    obs: Obs,
    last_collapse_at: u64,
    collapse_interval: u64,
}

impl<'p> Engine<'p> {
    fn new(cp: &'p ConstraintProgram, config: &SolverConfig, obs: Obs) -> Self {
        let n = cp.num_nodes();
        let interval = if config.collapse_interval == 0 {
            (n as u64).max(1024)
        } else {
            config.collapse_interval as u64
        };
        let mut engine = Engine {
            cp,
            config: config.clone(),
            uf: UnionFind::new(n),
            pts: IndexVec::from_elem(HybridSet::new(), n),
            delta: IndexVec::from_elem(HybridSet::new(), n),
            succs: IndexVec::from_elem(Vec::new(), n),
            loads_from: IndexVec::from_elem(Vec::new(), n),
            stores_from: IndexVec::from_elem(Vec::new(), n),
            fields_from: IndexVec::from_elem(Vec::new(), n),
            fp_sites: IndexVec::from_elem(Vec::new(), n),
            wired: HashSet::new(),
            call_targets: IndexVec::from_elem(Vec::new(), cp.callsites().len()),
            worklist: VecDeque::new(),
            on_list: IndexVec::from_elem(false, n),
            stats: SolveStats::default(),
            obs,
            last_collapse_at: 0,
            collapse_interval: interval,
        };
        engine.init();
        engine
    }

    fn find(&mut self, node: NodeId) -> NodeId {
        NodeId::from_u32(self.uf.find(node.as_u32()))
    }

    fn init(&mut self) {
        for l in self.cp.loads() {
            self.loads_from[l.ptr].push(l.dst);
        }
        for s in self.cp.stores() {
            self.stores_from[s.ptr].push(s.src);
        }
        for fa in self.cp.field_addrs() {
            self.fields_from[fa.base].push((fa.field, fa.dst));
        }
        for (cs_id, cs) in self.cp.callsites().iter_enumerated() {
            match cs.callee {
                CalleeRef::Direct(f) => self.wire(cs_id, f),
                CalleeRef::Indirect(fp) => self.fp_sites[fp].push(cs_id),
            }
        }
        for c in self.cp.copies() {
            self.add_edge(c.dst, c.src);
        }
        for a in self.cp.addr_ofs() {
            self.add_obj(a.dst, a.obj);
        }
    }

    fn enqueue(&mut self, rep: NodeId) {
        if !self.on_list[rep] {
            self.on_list[rep] = true;
            self.worklist.push_back(rep);
        }
    }

    /// Adds object `obj` to `pts(node)`.
    fn add_obj(&mut self, node: NodeId, obj: NodeId) {
        let rep = self.find(node);
        if self.pts[rep].insert(obj.as_u32()) {
            self.delta[rep].insert(obj.as_u32());
            self.enqueue(rep);
        }
    }

    /// Adds the copy edge `dst ⊇ src` and propagates `pts(src)` once.
    fn add_edge(&mut self, dst: NodeId, src: NodeId) {
        let (src, dst) = (self.find(src), self.find(dst));
        if src == dst {
            return;
        }
        match self.succs[src].binary_search(&dst) {
            Ok(_) => return,
            Err(pos) => self.succs[src].insert(pos, dst),
        }
        self.stats.edges_added += 1;
        // Propagate everything src already knows.
        let src_set = std::mem::take(&mut self.pts[src]);
        self.flush_into(dst, &src_set);
        self.pts[src] = src_set;
    }

    /// Unions `set` into `pts(dst)`, queueing the growth as delta.
    fn flush_into(&mut self, dst: NodeId, set: &HybridSet) {
        let rep = self.find(dst);
        let mut added = Vec::new();
        let mut dst_set = std::mem::take(&mut self.pts[rep]);
        dst_set.union_with_delta(set, &mut added);
        self.pts[rep] = dst_set;
        if !added.is_empty() {
            self.stats.elements_propagated += added.len() as u64;
            for v in added {
                self.delta[rep].insert(v);
            }
            self.enqueue(rep);
        }
    }

    /// Records callee `f` for call site `cs` and wires its value flow.
    fn wire(&mut self, cs_id: CallSiteId, f: FuncId) {
        if !self.wired.insert((cs_id, f)) {
            return;
        }
        self.stats.calls_wired += 1;
        let targets = &mut self.call_targets[cs_id];
        if let Err(pos) = targets.binary_search(&f) {
            targets.insert(pos, f);
        }
        let cs = self.cp.callsite(cs_id);
        let info = self.cp.func(f);
        let pairs: Vec<(NodeId, NodeId)> = cs
            .args
            .iter()
            .zip(&info.formals)
            .filter_map(|(arg, formal)| arg.map(|a| (*formal, a)))
            .collect();
        for (formal, arg) in pairs {
            self.add_edge(formal, arg);
        }
        if let Some(dst) = cs.ret_dst {
            self.add_edge(dst, info.ret);
        }
    }

    fn run(mut self) -> (Solution, SolveStats) {
        let _span = self.obs.span("anders.worklist.propagate");
        while let Some(n) = self.worklist.pop_front() {
            self.on_list[n] = false;
            if self.find(n) != n {
                // Stale entry: merged away; its state moved to the rep.
                continue;
            }
            let d = std::mem::take(&mut self.delta[n]);
            if d.is_empty() {
                continue;
            }
            self.stats.propagations += 1;

            // Derived constraints from the new objects.
            for o in d.iter() {
                let obj = NodeId::from_u32(o);
                for i in 0..self.loads_from[n].len() {
                    let dst = self.loads_from[n][i];
                    self.add_edge(dst, obj);
                }
                for i in 0..self.stores_from[n].len() {
                    let src = self.stores_from[n][i];
                    self.add_edge(obj, src);
                }
                for i in 0..self.fields_from[n].len() {
                    let (field, dst) = self.fields_from[n][i];
                    if let Some(fld) = self.cp.field_of(obj, field) {
                        self.add_obj(dst, fld);
                    }
                }
                if let Some(f) = self.cp.node(obj).as_func() {
                    for i in 0..self.fp_sites[n].len() {
                        let cs = self.fp_sites[n][i];
                        self.wire(cs, f);
                    }
                }
            }

            // Copy propagation of the delta.
            let succ_count = self.succs[n].len();
            for i in 0..succ_count {
                let succ = self.succs[n][i];
                self.flush_into(succ, &d);
            }

            if self.config.cycle_elimination
                && self.stats.propagations - self.last_collapse_at >= self.collapse_interval
            {
                let _collapse = self.obs.span("anders.worklist.collapse");
                self.collapse_cycles();
                self.last_collapse_at = self.stats.propagations;
            }
        }

        let n = self.cp.num_nodes();
        let rep: Vec<u32> = (0..n as u32).map(|v| self.uf.find(v)).collect();
        (Solution::new(rep, self.pts, self.call_targets), self.stats)
    }

    /// Runs a Tarjan pass over the representative copy graph and collapses
    /// every multi-node component.
    fn collapse_cycles(&mut self) {
        self.stats.scc_passes += 1;
        let n = self.cp.num_nodes();
        // Snapshot reps so the successors closure is read-only.
        let rep_of: Vec<u32> = (0..n as u32).map(|v| self.uf.find(v)).collect();
        let succs = &self.succs;
        let scc = tarjan(n, |v, out| {
            if rep_of[v as usize] == v {
                for &d in &succs[NodeId::from_u32(v)] {
                    out.push(rep_of[d.as_u32() as usize]);
                }
            }
        });

        // Group representative nodes by component.
        let mut first_of_comp: Vec<Option<u32>> = vec![None; scc.count as usize];
        let mut merges: Vec<(u32, u32)> = Vec::new();
        for v in 0..n as u32 {
            if rep_of[v as usize] != v {
                continue;
            }
            let comp = scc.component[v as usize] as usize;
            match first_of_comp[comp] {
                None => first_of_comp[comp] = Some(v),
                Some(first) => merges.push((first, v)),
            }
        }

        for (a, b) in merges {
            self.merge(NodeId::from_u32(a), NodeId::from_u32(b));
        }
    }

    /// Unions `a` and `b`, merging all per-node state into the new rep.
    fn merge(&mut self, a: NodeId, b: NodeId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let root = NodeId::from_u32(
            self.uf
                .union(ra.as_u32(), rb.as_u32())
                .expect("distinct reps"),
        );
        let other = if root == ra { rb } else { ra };
        self.stats.nodes_collapsed += 1;

        let other_pts = std::mem::take(&mut self.pts[other]);
        self.pts[root].union_with(&other_pts);
        let other_delta = std::mem::take(&mut self.delta[other]);
        self.delta[root].union_with(&other_delta);

        let mut other_succs = std::mem::take(&mut self.succs[other]);
        let mut merged = std::mem::take(&mut self.succs[root]);
        merged.append(&mut other_succs);
        merged.sort_unstable();
        merged.dedup();
        // Drop self-edges through the new union lazily (checked in add_edge).
        self.succs[root] = merged;

        let mut v = std::mem::take(&mut self.loads_from[other]);
        self.loads_from[root].append(&mut v);
        let mut v = std::mem::take(&mut self.stores_from[other]);
        self.stores_from[root].append(&mut v);
        let mut v = std::mem::take(&mut self.fields_from[other]);
        self.fields_from[root].append(&mut v);
        let mut v = std::mem::take(&mut self.fp_sites[other]);
        self.fp_sites[root].append(&mut v);

        // Everything already known must be (re)propagated from the merged
        // rep once, since the members' histories differ.
        let full = self.pts[root].clone();
        self.delta[root] = full;
        if !self.delta[root].is_empty() {
            self.enqueue(root);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use ddpa_constraints::ConstraintBuilder;

    fn check_against_naive(cp: &ConstraintProgram) {
        let expected = naive::solve(cp);
        for config in [
            SolverConfig::default(),
            SolverConfig::without_cycle_elimination(),
        ] {
            let (got, _) = solve(cp, &config);
            if let Err(node) = got.same_as(&expected, cp) {
                panic!(
                    "mismatch at {} (cycle_elim={}): naive={:?} worklist={:?}",
                    cp.display_node(node),
                    config.cycle_elimination,
                    expected.pts_nodes(node),
                    got.pts_nodes(node),
                );
            }
        }
    }

    #[test]
    fn matches_naive_on_basic_flow() {
        let mut b = ConstraintBuilder::new();
        let (p, o, x, y, t) = (b.var("p"), b.var("o"), b.var("x"), b.var("y"), b.var("t"));
        b.addr_of(p, o);
        b.addr_of(x, t);
        b.store(p, x);
        b.load(y, p);
        check_against_naive(&b.build());
    }

    #[test]
    fn matches_naive_with_copy_cycles() {
        let mut b = ConstraintBuilder::new();
        let (x, y, z, o1, o2) = (b.var("x"), b.var("y"), b.var("z"), b.var("o1"), b.var("o2"));
        b.copy(x, y);
        b.copy(y, z);
        b.copy(z, x);
        b.addr_of(x, o1);
        b.addr_of(z, o2);
        check_against_naive(&b.build());
    }

    #[test]
    fn collapse_produces_same_solution() {
        // Force a tiny collapse interval to exercise the SCC path.
        let mut b = ConstraintBuilder::new();
        let o = b.var("obj");
        let names: Vec<String> = (0..20).map(|i| format!("v{i}")).collect();
        let nodes: Vec<_> = names.iter().map(|s| b.var(s)).collect();
        for w in nodes.windows(2) {
            b.copy(w[1], w[0]);
        }
        // Close the cycle.
        b.copy(nodes[0], nodes[19]);
        b.addr_of(nodes[5], o);
        let cp = b.build();
        let expected = naive::solve(&cp);
        let config = SolverConfig {
            cycle_elimination: true,
            collapse_interval: 2,
        };
        let (got, stats) = solve(&cp, &config);
        assert!(got.same_as(&expected, &cp).is_ok());
        assert!(
            stats.nodes_collapsed > 0,
            "cycle should collapse: {stats:?}"
        );
    }

    #[test]
    fn matches_naive_with_indirect_calls() {
        let mut b = ConstraintBuilder::new();
        let f = b.func("f", 1);
        let g = b.func("g", 1);
        let fi = b.func_info(f).clone();
        let gi = b.func_info(g).clone();
        b.copy(fi.ret, fi.formals[0]);
        // g returns a global object's address instead.
        let (go, fp, x, r, o) = (b.var("go"), b.var("fp"), b.var("x"), b.var("r"), b.var("o"));
        b.addr_of(gi.ret, go);
        b.addr_of(x, o);
        b.addr_of(fp, fi.object);
        b.addr_of(fp, gi.object);
        b.call_indirect(fp, vec![Some(x)], Some(r));
        let cp = b.build();
        check_against_naive(&cp);
        let sol = solve(&cp, &SolverConfig::default()).0;
        let cs = cp.callsites().indices().next().expect("callsite");
        assert_eq!(sol.call_targets(cs), &[f, g]);
    }

    #[test]
    fn load_store_chains_match_naive() {
        // A small "linked list" shape: nodes store successors through
        // pointers, then a traversal loads them back.
        let mut b = ConstraintBuilder::new();
        let (n1, n2, n3) = (b.var("n1"), b.var("n2"), b.var("n3"));
        let (p1, p2, p3) = (b.var("p1"), b.var("p2"), b.var("p3"));
        let (cur, next) = (b.var("cur"), b.var("next"));
        b.addr_of(p1, n1);
        b.addr_of(p2, n2);
        b.addr_of(p3, n3);
        b.store(p1, p2); // n1 -> n2
        b.store(p2, p3); // n2 -> n3
        b.copy(cur, p1);
        b.load(next, cur); // next = *cur
        b.copy(cur, next); // loop
        check_against_naive(&b.build());
    }
}
