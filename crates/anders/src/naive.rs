//! The naive iterate-to-fixpoint solver — a differential-testing oracle.
//!
//! Every inclusion rule is re-evaluated over the whole program until
//! nothing changes. This is the textbook semantics of Andersen's analysis,
//! written to be obviously correct rather than fast; the worklist solver
//! and the demand engine are both tested against it.

use ddpa_support::{HybridSet, IndexVec};

use ddpa_constraints::{CalleeRef, ConstraintProgram, FuncId, NodeId};

use crate::solution::Solution;

/// Solves `cp` by global fixpoint iteration.
pub fn solve(cp: &ConstraintProgram) -> Solution {
    let n = cp.num_nodes();
    let mut pts: IndexVec<NodeId, HybridSet> = IndexVec::from_elem(HybridSet::new(), n);
    let mut call_targets: IndexVec<_, Vec<FuncId>> =
        IndexVec::from_elem(Vec::new(), cp.callsites().len());

    // Seed: address-of constraints.
    for a in cp.addr_ofs() {
        pts[a.dst].insert(a.obj.as_u32());
    }

    let mut changed = true;
    while changed {
        changed = false;

        for c in cp.copies() {
            changed |= union_into(&mut pts, c.dst, c.src);
        }

        for fa in cp.field_addrs() {
            let objs: Vec<u32> = pts[fa.base].iter().collect();
            for o in objs {
                if let Some(fld) = cp.field_of(NodeId::from_u32(o), fa.field) {
                    changed |= pts[fa.dst].insert(fld.as_u32());
                }
            }
        }

        for l in cp.loads() {
            let objs: Vec<u32> = pts[l.ptr].iter().collect();
            for o in objs {
                changed |= union_into(&mut pts, l.dst, NodeId::from_u32(o));
            }
        }

        for s in cp.stores() {
            let objs: Vec<u32> = pts[s.ptr].iter().collect();
            for o in objs {
                changed |= union_into(&mut pts, NodeId::from_u32(o), s.src);
            }
        }

        for (cs_id, cs) in cp.callsites().iter_enumerated() {
            // Resolve the callee set under the current solution.
            let callees: Vec<FuncId> = match cs.callee {
                CalleeRef::Direct(f) => vec![f],
                CalleeRef::Indirect(fp) => pts[fp]
                    .iter()
                    .filter_map(|o| cp.node(NodeId::from_u32(o)).as_func())
                    .collect(),
            };
            for f in callees {
                let targets = &mut call_targets[cs_id];
                if let Err(pos) = targets.binary_search(&f) {
                    targets.insert(pos, f);
                    changed = true;
                }
                let info = cp.func(f);
                for (arg, formal) in cs.args.iter().zip(&info.formals) {
                    if let Some(arg) = arg {
                        changed |= union_into(&mut pts, *formal, *arg);
                    }
                }
                if let Some(dst) = cs.ret_dst {
                    changed |= union_into(&mut pts, dst, info.ret);
                }
            }
        }
    }

    let rep = (0..n as u32).collect();
    Solution::new(rep, pts, call_targets)
}

/// `pts[dst] ∪= pts[src]`, returning whether `dst` grew.
fn union_into(pts: &mut IndexVec<NodeId, HybridSet>, dst: NodeId, src: NodeId) -> bool {
    if dst == src {
        return false;
    }
    // Split the borrow: take the source set out temporarily.
    let src_set = std::mem::take(&mut pts[src]);
    let changed = pts[dst].union_with(&src_set);
    pts[src] = src_set;
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpa_constraints::ConstraintBuilder;

    fn pts_names(cp: &ConstraintProgram, sol: &Solution, name: &str) -> Vec<String> {
        let node = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == name)
            .unwrap_or_else(|| panic!("no node named {name}"));
        sol.pts_nodes(node)
            .into_iter()
            .map(|n| cp.display_node(n))
            .collect()
    }

    #[test]
    fn resolves_copies_transitively() {
        let mut b = ConstraintBuilder::new();
        let (x, y, z, o) = (b.var("x"), b.var("y"), b.var("z"), b.var("o"));
        b.addr_of(x, o);
        b.copy(y, x);
        b.copy(z, y);
        let cp = b.build();
        let sol = solve(&cp);
        assert_eq!(pts_names(&cp, &sol, "z"), vec!["o"]);
    }

    #[test]
    fn loads_and_stores_flow_through_objects() {
        // p = &o; *p = x; y = *p  ⟹  pts(y) ⊇ pts(x)
        let mut b = ConstraintBuilder::new();
        let (p, o, x, y, t) = (b.var("p"), b.var("o"), b.var("x"), b.var("y"), b.var("t"));
        b.addr_of(p, o);
        b.addr_of(x, t);
        b.store(p, x);
        b.load(y, p);
        let cp = b.build();
        let sol = solve(&cp);
        assert_eq!(pts_names(&cp, &sol, "y"), vec!["t"]);
        assert_eq!(pts_names(&cp, &sol, "o"), vec!["t"]);
    }

    #[test]
    fn indirect_calls_resolve_on_the_fly() {
        // fp = &f; r = (*fp)(x) with f returning its argument.
        let mut b = ConstraintBuilder::new();
        let f = b.func("f", 1);
        let info = b.func_info(f).clone();
        b.copy(info.ret, info.formals[0]);
        let (fp, x, r, o) = (b.var("fp"), b.var("x"), b.var("r"), b.var("o"));
        b.addr_of(fp, info.object);
        b.addr_of(x, o);
        b.call_indirect(fp, vec![Some(x)], Some(r));
        let cp = b.build();
        let sol = solve(&cp);
        assert_eq!(pts_names(&cp, &sol, "r"), vec!["o"]);
        let cs = cp.callsites().indices().next().expect("callsite");
        assert_eq!(sol.call_targets(cs), &[f]);
    }

    #[test]
    fn cyclic_copies_terminate() {
        let mut b = ConstraintBuilder::new();
        let (x, y, o) = (b.var("x"), b.var("y"), b.var("o"));
        b.copy(x, y);
        b.copy(y, x);
        b.addr_of(x, o);
        let cp = b.build();
        let sol = solve(&cp);
        assert_eq!(pts_names(&cp, &sol, "y"), vec!["o"]);
    }
}
