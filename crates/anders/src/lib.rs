//! Exhaustive (whole-program) Andersen-style pointer analysis.
//!
//! This crate is the *baseline* the PLDI 2001 paper compares against: the
//! classical inclusion-based, flow- and context-insensitive analysis that
//! computes the points-to set of **every** location, with indirect calls
//! resolved on the fly.
//!
//! Two solvers are provided:
//!
//! * [`naive::solve`] — a direct iterate-until-fixpoint evaluation of the
//!   inclusion rules. Quadratic and only used as a differential-testing
//!   oracle.
//! * [`worklist::solve`] — the production solver: difference propagation
//!   over an explicit copy-edge graph that grows as loads, stores and
//!   indirect calls resolve, with optional periodic cycle collapsing
//!   ([`SolverConfig::cycle_elimination`]) using union-find.
//! * [`wave::solve`] — a wave-propagation variant: per round, collapse
//!   cycles, sweep sets in topological order, then grow the graph from
//!   the complex constraints. An independently-derived scheme used for
//!   differential testing and as a bench baseline.
//!
//! Both produce a [`Solution`], which answers `pts(v)` for every node and
//! records the resolved targets of every call site.
//!
//! # Examples
//!
//! ```
//! let program = ddpa_ir::parse("int g; void main() { int *p = &g; int *q = p; }")?;
//! let cp = ddpa_constraints::lower(&program)?;
//! let solution = ddpa_anders::solve(&cp);
//! let q = cp.node_ids().find(|&n| cp.display_node(n) == "main::q").expect("q exists");
//! let g = cp.node_ids().find(|&n| cp.display_node(n) == "g").expect("g exists");
//! assert!(solution.points_to(q, g));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod naive;
pub mod solution;
pub mod wave;
pub mod worklist;

pub use solution::Solution;
pub use worklist::{SolveStats, SolverConfig};

use ddpa_constraints::ConstraintProgram;

/// Solves `cp` exhaustively with the default (worklist) solver.
pub fn solve(cp: &ConstraintProgram) -> Solution {
    worklist::solve(cp, &SolverConfig::default()).0
}

/// Like [`solve`], but publishes work counters and phase timings into
/// `obs` (see [`worklist::solve_with_obs`]).
pub fn solve_with_obs(cp: &ConstraintProgram, obs: &ddpa_obs::Obs) -> Solution {
    worklist::solve_with_obs(cp, &SolverConfig::default(), obs).0
}
