//! The result of an exhaustive analysis.

use ddpa_support::idx::Idx as _;
use ddpa_support::{HybridSet, IndexVec};

use ddpa_constraints::{CallSiteId, ConstraintProgram, FuncId, NodeId};

/// A complete points-to solution: `pts(v)` for every node, plus the
/// resolved targets of every call site.
///
/// Nodes may have been merged by cycle collapsing; queries go through the
/// representative table transparently.
#[derive(Clone, Debug)]
pub struct Solution {
    /// `rep[v]` is the index of the node whose set holds `v`'s answer.
    rep: Vec<u32>,
    /// Points-to sets, valid at representative indices.
    pts: IndexVec<NodeId, HybridSet>,
    /// Resolved callee set per call site (sorted, deduplicated).
    call_targets: IndexVec<CallSiteId, Vec<FuncId>>,
}

impl Solution {
    pub(crate) fn new(
        rep: Vec<u32>,
        pts: IndexVec<NodeId, HybridSet>,
        call_targets: IndexVec<CallSiteId, Vec<FuncId>>,
    ) -> Self {
        Solution {
            rep,
            pts,
            call_targets,
        }
    }

    /// The points-to set of `node`.
    pub fn pts(&self, node: NodeId) -> &HybridSet {
        let rep = self.rep[node.index()];
        &self.pts[NodeId::from_u32(rep)]
    }

    /// Returns `true` if `node` may point to `target`.
    pub fn points_to(&self, node: NodeId, target: NodeId) -> bool {
        self.pts(node).contains(target.as_u32())
    }

    /// The points-to set of `node` as sorted node ids.
    pub fn pts_nodes(&self, node: NodeId) -> Vec<NodeId> {
        self.pts(node).iter().map(NodeId::from_u32).collect()
    }

    /// Returns `true` if `a` and `b` may alias (their points-to sets
    /// intersect).
    pub fn may_alias(&self, a: NodeId, b: NodeId) -> bool {
        self.pts(a).intersects(self.pts(b))
    }

    /// The resolved callee set of `cs` (sorted).
    pub fn call_targets(&self, cs: CallSiteId) -> &[FuncId] {
        &self.call_targets[cs]
    }

    /// Total size of all points-to sets (counting each node once through
    /// its representative) — a precision metric.
    pub fn total_pts_size(&self, cp: &ConstraintProgram) -> usize {
        cp.node_ids().map(|n| self.pts(n).len()).sum()
    }

    /// Checks that this solution equals `other` on every node and call
    /// site of `cp`, returning the first differing node on failure.
    pub fn same_as(&self, other: &Solution, cp: &ConstraintProgram) -> Result<(), NodeId> {
        for node in cp.node_ids() {
            let a: Vec<u32> = self.pts(node).iter().collect();
            let b: Vec<u32> = other.pts(node).iter().collect();
            if a != b {
                return Err(node);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rep_indirection_answers_queries() {
        // Two nodes merged: node 1 delegates to node 0.
        let mut pts: IndexVec<NodeId, HybridSet> = IndexVec::new();
        let mut set = HybridSet::new();
        set.insert(2);
        pts.push(set);
        pts.push(HybridSet::new());
        pts.push(HybridSet::new());
        let sol = Solution::new(vec![0, 0, 2], pts, IndexVec::new());
        assert!(sol.points_to(NodeId::from_u32(0), NodeId::from_u32(2)));
        assert!(sol.points_to(NodeId::from_u32(1), NodeId::from_u32(2)));
        assert!(!sol.points_to(NodeId::from_u32(2), NodeId::from_u32(2)));
        assert!(sol.may_alias(NodeId::from_u32(0), NodeId::from_u32(1)));
        assert!(!sol.may_alias(NodeId::from_u32(0), NodeId::from_u32(2)));
        assert_eq!(
            sol.pts_nodes(NodeId::from_u32(1)),
            vec![NodeId::from_u32(2)]
        );
    }
}
