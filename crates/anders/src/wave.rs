//! Wave propagation: a topological-order exhaustive solver.
//!
//! An alternative to the worklist scheme: each *round* collapses the
//! current copy-edge graph's cycles, orders the condensation
//! topologically, and sweeps points-to sets down the order in one pass
//! (the "wave"), then evaluates load/store/call constraints to grow the
//! graph; rounds repeat until nothing changes. Compared to the worklist
//! solver, propagation order is globally optimal per round instead of
//! discovery-driven, at the cost of whole-graph passes.
//!
//! The implementation favours clarity over micro-optimization — it exists
//! as an independently-derived solver for differential testing and as a
//! baseline variant in the benches.

use std::collections::HashSet;

use ddpa_obs::Obs;
use ddpa_support::scc::tarjan;
use ddpa_support::{HybridSet, IndexVec, UnionFind};

use ddpa_constraints::{CallSiteId, CalleeRef, ConstraintProgram, FuncId, NodeId};

use crate::solution::Solution;

/// Work counters reported by [`solve`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaveStats {
    /// Full sweep rounds executed.
    pub rounds: u64,
    /// Copy edges in the final graph.
    pub edges: u64,
    /// Nodes merged by cycle collapsing.
    pub collapsed: u64,
}

/// Solves `cp` exhaustively by wave propagation.
pub fn solve(cp: &ConstraintProgram) -> (Solution, WaveStats) {
    solve_with_obs(cp, &Obs::new())
}

/// Like [`solve`], but publishes the work counters into `obs` (under
/// `anders.wave.*`) and times each round's phases when profiling is on.
pub fn solve_with_obs(cp: &ConstraintProgram, obs: &Obs) -> (Solution, WaveStats) {
    let _span = obs.span("anders.wave");
    let n = cp.num_nodes();
    let mut uf = UnionFind::new(n);
    let mut pts: IndexVec<NodeId, HybridSet> = IndexVec::from_elem(HybridSet::new(), n);
    // Copy successors, valid at representatives (targets resolved lazily).
    let mut succs: IndexVec<NodeId, Vec<NodeId>> = IndexVec::from_elem(Vec::new(), n);
    let mut edge_set: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut call_targets: IndexVec<CallSiteId, Vec<FuncId>> =
        IndexVec::from_elem(Vec::new(), cp.callsites().len());
    let mut wired: HashSet<(CallSiteId, FuncId)> = HashSet::new();
    let mut stats = WaveStats::default();

    let add_edge = |uf: &mut UnionFind,
                    succs: &mut IndexVec<NodeId, Vec<NodeId>>,
                    edge_set: &mut HashSet<(NodeId, NodeId)>,
                    src: NodeId,
                    dst: NodeId|
     -> bool {
        let (rs, rd) = (
            NodeId::from_u32(uf.find(src.as_u32())),
            NodeId::from_u32(uf.find(dst.as_u32())),
        );
        if rs == rd {
            return false;
        }
        if edge_set.insert((rs, rd)) {
            succs[rs].push(rd);
            true
        } else {
            false
        }
    };

    for c in cp.copies() {
        add_edge(&mut uf, &mut succs, &mut edge_set, c.src, c.dst);
    }
    for a in cp.addr_ofs() {
        let rep = NodeId::from_u32(uf.find(a.dst.as_u32()));
        pts[rep].insert(a.obj.as_u32());
    }

    loop {
        stats.rounds += 1;

        // 1. Collapse cycles of the representative copy graph.
        let collapse_span = obs.span("anders.wave.collapse");
        let rep_of: Vec<u32> = (0..n as u32).map(|v| uf.find(v)).collect();
        let scc = tarjan(n, |v, out| {
            if rep_of[v as usize] == v {
                for d in &succs[NodeId::from_u32(v)] {
                    out.push(rep_of[d.as_u32() as usize]);
                }
            }
        });
        let mut comp_first: Vec<Option<u32>> = vec![None; scc.count as usize];
        for v in 0..n as u32 {
            if rep_of[v as usize] != v {
                continue;
            }
            let comp = scc.component[v as usize] as usize;
            match comp_first[comp] {
                None => comp_first[comp] = Some(v),
                Some(first) => {
                    let root = uf.union(first, v).expect("distinct reps");
                    let other = if root == first { v } else { first };
                    stats.collapsed += 1;
                    let moved = std::mem::take(&mut pts[NodeId::from_u32(other)]);
                    pts[NodeId::from_u32(root)].union_with(&moved);
                    let mut moved = std::mem::take(&mut succs[NodeId::from_u32(other)]);
                    succs[NodeId::from_u32(root)].append(&mut moved);
                    comp_first[comp] = Some(root);
                }
            }
        }

        drop(collapse_span);

        // 2. One wave: sweep sets down the condensation in reverse
        //    topological order of components (Tarjan numbers components in
        //    reverse topological order, so iterate components descending).
        let sweep_span = obs.span("anders.wave.sweep");
        let rep_of: Vec<u32> = (0..n as u32).map(|v| uf.find(v)).collect();
        let scc = tarjan(n, |v, out| {
            if rep_of[v as usize] == v {
                for d in &succs[NodeId::from_u32(v)] {
                    out.push(rep_of[d.as_u32() as usize]);
                }
            }
        });
        let mut order: Vec<NodeId> = (0..n as u32)
            .filter(|&v| rep_of[v as usize] == v)
            .map(NodeId::from_u32)
            .collect();
        order.sort_by_key(|v| std::cmp::Reverse(scc.component[v.as_u32() as usize]));
        let mut set_changed = false;
        for &v in &order {
            if pts[v].is_empty() {
                continue;
            }
            let src_set = std::mem::take(&mut pts[v]);
            for i in 0..succs[v].len() {
                let d = NodeId::from_u32(uf.find(succs[v][i].as_u32()));
                if d != v {
                    set_changed |= pts[d].union_with(&src_set);
                }
            }
            pts[v] = src_set;
        }

        drop(sweep_span);

        // 3. Evaluate the complex constraints against the swept sets.
        let _complex_span = obs.span("anders.wave.complex");
        let mut graph_changed = false;
        let objs_of = |uf: &mut UnionFind, pts: &IndexVec<NodeId, HybridSet>, p: NodeId| {
            let rep = NodeId::from_u32(uf.find(p.as_u32()));
            pts[rep].iter().collect::<Vec<u32>>()
        };
        for l in cp.loads() {
            for o in objs_of(&mut uf, &pts, l.ptr) {
                graph_changed |= add_edge(
                    &mut uf,
                    &mut succs,
                    &mut edge_set,
                    NodeId::from_u32(o),
                    l.dst,
                );
            }
        }
        for s in cp.stores() {
            for o in objs_of(&mut uf, &pts, s.ptr) {
                graph_changed |= add_edge(
                    &mut uf,
                    &mut succs,
                    &mut edge_set,
                    s.src,
                    NodeId::from_u32(o),
                );
            }
        }
        for fa in cp.field_addrs() {
            for o in objs_of(&mut uf, &pts, fa.base) {
                if let Some(fld) = cp.field_of(NodeId::from_u32(o), fa.field) {
                    let rep = NodeId::from_u32(uf.find(fa.dst.as_u32()));
                    if pts[rep].insert(fld.as_u32()) {
                        set_changed = true;
                    }
                }
            }
        }
        for (cs_id, cs) in cp.callsites().iter_enumerated() {
            let callees: Vec<FuncId> = match cs.callee {
                CalleeRef::Direct(f) => vec![f],
                CalleeRef::Indirect(fp) => objs_of(&mut uf, &pts, fp)
                    .into_iter()
                    .filter_map(|o| cp.node(NodeId::from_u32(o)).as_func())
                    .collect(),
            };
            for f in callees {
                if wired.insert((cs_id, f)) {
                    graph_changed = true;
                    let targets = &mut call_targets[cs_id];
                    if let Err(pos) = targets.binary_search(&f) {
                        targets.insert(pos, f);
                    }
                    let info = cp.func(f);
                    for (arg, formal) in cs.args.iter().zip(&info.formals) {
                        if let Some(arg) = arg {
                            add_edge(&mut uf, &mut succs, &mut edge_set, *arg, *formal);
                        }
                    }
                    if let Some(dst) = cs.ret_dst {
                        add_edge(&mut uf, &mut succs, &mut edge_set, info.ret, dst);
                    }
                }
            }
        }

        if !set_changed && !graph_changed {
            break;
        }
    }

    stats.edges = edge_set.len() as u64;
    obs.counter("anders.wave.rounds").add(stats.rounds);
    obs.counter("anders.wave.edges").add(stats.edges);
    obs.counter("anders.wave.collapsed").add(stats.collapsed);
    let rep: Vec<u32> = (0..n as u32).map(|v| uf.find(v)).collect();
    (Solution::new(rep, pts, call_targets), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use ddpa_constraints::ConstraintBuilder;

    fn check(cp: &ConstraintProgram) {
        let expected = naive::solve(cp);
        let (got, stats) = solve(cp);
        assert!(stats.rounds >= 1);
        for node in cp.node_ids() {
            assert_eq!(
                got.pts_nodes(node),
                expected.pts_nodes(node),
                "wave differs at {}",
                cp.display_node(node)
            );
        }
        for cs in cp.callsites().indices() {
            assert_eq!(got.call_targets(cs), expected.call_targets(cs));
        }
    }

    #[test]
    fn matches_naive_on_load_store_chains() {
        let mut b = ConstraintBuilder::new();
        let (p, o, x, y, t) = (b.var("p"), b.var("o"), b.var("x"), b.var("y"), b.var("t"));
        b.addr_of(p, o);
        b.addr_of(x, t);
        b.store(p, x);
        b.load(y, p);
        check(&b.build());
    }

    #[test]
    fn matches_naive_with_cycles_and_calls() {
        let mut b = ConstraintBuilder::new();
        let f = b.func("f", 1);
        let info = b.func_info(f).clone();
        b.copy(info.ret, info.formals[0]);
        let (x, y, z, o, fp, r) = (
            b.var("x"),
            b.var("y"),
            b.var("z"),
            b.var("o"),
            b.var("fp"),
            b.var("r"),
        );
        b.copy(x, y);
        b.copy(y, z);
        b.copy(z, x);
        b.addr_of(x, o);
        b.addr_of(fp, info.object);
        b.call_indirect(fp, vec![Some(x)], Some(r));
        let cp = b.build();
        check(&cp);
        let (_, stats) = solve(&cp);
        assert!(stats.collapsed >= 2, "the 3-cycle collapses: {stats:?}");
    }

    #[test]
    fn matches_naive_with_fields() {
        let cp = ddpa_constraints::parse_constraints(
            "field s.0\n\
             p = &s\n\
             f = &p->0\n\
             x = &val\n\
             *f = x\n\
             r = *f\n",
        )
        .expect("parses");
        check(&cp);
    }

    #[test]
    fn matches_naive_on_generated_program() {
        // A deterministic mid-size program touching every constraint kind.
        let mut b = ConstraintBuilder::new();
        let objs: Vec<_> = (0..8).map(|i| b.var(&format!("o{i}"))).collect();
        let vars: Vec<_> = (0..40).map(|i| b.var(&format!("v{i}"))).collect();
        for i in 0..40usize {
            b.addr_of(vars[i], objs[i % 8]);
            b.copy(vars[(i + 7) % 40], vars[i]);
            if i % 3 == 0 {
                b.load(vars[(i + 11) % 40], vars[i]);
            }
            if i % 5 == 0 {
                b.store(vars[i], vars[(i + 13) % 40]);
            }
        }
        check(&b.build());
    }
}
