//! Property tests for the cloning transformation on arbitrary programs:
//!
//! * k = 0 reproduces the context-insensitive solution exactly;
//! * any k only *removes* facts (projected CS ⊆ CI on every node);
//! * precision is monotone in k;
//! * the clone cap keeps the construction sound.
//!
//! Programs are drawn from a seeded RNG so every run checks the same
//! corpus deterministically.

use ddpa_support::rng::Rng;

use ddpa_anders::naive;
use ddpa_callgraph::CallGraph;
use ddpa_constraints::{ConstraintBuilder, ConstraintProgram, NodeId};
use ddpa_cxt::{clone_expand, CloneConfig, CsAnalysis};
use ddpa_demand::{DemandConfig, DemandEngine};

const CASES: usize = 48;

/// A generatable program with real function structure: every constraint
/// and call site is owned by some function, as lowered code would be.
#[derive(Clone, Debug)]
struct Spec {
    funcs: Vec<FuncSpec>,
    num_globals: usize,
}

#[derive(Clone, Debug)]
struct FuncSpec {
    arity: usize,
    /// (kind, a, b) over the function's slots: kind 0 → a=&b, 1 → a=b,
    /// 2 → a=*b, 3 → *a=b, 4 → ret=slot(a).
    body: Vec<(u8, usize, usize)>,
    /// (callee_index, arg_slot, ret_slot).
    calls: Vec<(usize, usize, usize)>,
}

fn random_spec(rng: &mut Rng) -> Spec {
    let num_funcs = rng.gen_range(1..5usize);
    let funcs = (0..num_funcs)
        .map(|_| {
            let arity = rng.gen_range(0..3usize);
            let body = (0..rng.gen_range(0..8usize))
                .map(|_| {
                    (
                        rng.gen_range(0..5u8),
                        rng.gen_range(0..8usize),
                        rng.gen_range(0..8usize),
                    )
                })
                .collect();
            let calls = (0..rng.gen_range(0..3usize))
                .map(|_| {
                    (
                        rng.gen_range(0..4usize),
                        rng.gen_range(0..8usize),
                        rng.gen_range(0..8usize),
                    )
                })
                .collect();
            FuncSpec { arity, body, calls }
        })
        .collect();
    Spec {
        funcs,
        num_globals: rng.gen_range(2..6usize),
    }
}

fn build(spec: &Spec) -> ConstraintProgram {
    let mut b = ConstraintBuilder::new();
    let globals: Vec<NodeId> = (0..spec.num_globals)
        .map(|i| b.var(&format!("g{i}")))
        .collect();
    let funcs: Vec<_> = spec
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| b.func(&format!("f{i}"), f.arity))
        .collect();

    // Per function: a few locals (owned) plus its formals form the slots.
    for (fi, fspec) in spec.funcs.iter().enumerate() {
        let f = funcs[fi];
        let info = b.func_info(f).clone();
        let mut slots: Vec<NodeId> = Vec::new();
        for li in 0..4 {
            let local = b.var(&format!("f{fi}::l{li}"));
            b.set_owner(local, f);
            slots.push(local);
        }
        slots.extend(info.formals.iter().copied());
        slots.extend(globals.iter().copied());
        let slot = |i: usize| slots[i % slots.len()];
        for &(kind, x, y) in &fspec.body {
            match kind {
                0 => b.addr_of(slot(x), slot(y)),
                1 => b.copy(slot(x), slot(y)),
                2 => b.load(slot(x), slot(y)),
                3 => b.store(slot(x), slot(y)),
                _ => b.copy(info.ret, slot(x)),
            };
        }
        for &(callee, arg, ret) in &fspec.calls {
            let callee = funcs[callee % funcs.len()];
            let arity = b.func_info(callee).formals.len();
            let args = (0..arity).map(|_| Some(slot(arg))).collect();
            let cs = b.call_direct(callee, args, Some(slot(ret)));
            b.set_caller(cs, f);
        }
    }
    b.build()
}

fn projected(cs: &CsAnalysis, cp: &ConstraintProgram) -> Vec<(NodeId, Vec<NodeId>)> {
    cp.node_ids().map(|n| (n, cs.pts_of(n))).collect()
}

#[test]
fn k0_equals_context_insensitive() {
    let mut rng = Rng::seed_from_u64(0xc10_0001);
    for case in 0..CASES {
        let spec = random_spec(&mut rng);
        let cp = build(&spec);
        let ci = naive::solve(&cp);
        let cs = CsAnalysis::run(&cp, &CloneConfig::with_k(0));
        for (n, pts) in projected(&cs, &cp) {
            assert_eq!(
                pts,
                ci.pts_nodes(n),
                "case {case}: k=0 differs at {}",
                cp.display_node(n)
            );
        }
    }
}

#[test]
fn cs_is_subset_of_ci_and_monotone_in_k() {
    let mut rng = Rng::seed_from_u64(0xc10_0002);
    for case in 0..CASES {
        let spec = random_spec(&mut rng);
        let cp = build(&spec);
        let ci = naive::solve(&cp);
        let ci_total: usize = cp.node_ids().map(|n| ci.pts(n).len()).sum();
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let (cg, _) = CallGraph::from_demand(&mut engine);
        let mut last_total = usize::MAX;
        for k in [0usize, 1, 2] {
            let cs = CsAnalysis::run_with_callgraph(&cp, &cg, &CloneConfig::with_k(k));
            let mut total = 0usize;
            for (n, pts) in projected(&cs, &cp) {
                total += pts.len();
                for t in pts {
                    assert!(
                        ci.points_to(n, t),
                        "case {case}, k={k}: spurious fact {} ∈ pts({})",
                        cp.display_node(t),
                        cp.display_node(n)
                    );
                }
            }
            assert!(total <= ci_total, "case {case}, k={k}: exceeded CI total");
            assert!(
                total <= last_total,
                "case {case}: precision regressed from k-1 to k={k}"
            );
            last_total = total;
        }
    }
}

#[test]
fn clone_cap_is_sound() {
    let mut rng = Rng::seed_from_u64(0xc10_0003);
    for case in 0..CASES {
        let spec = random_spec(&mut rng);
        let cp = build(&spec);
        let ci = naive::solve(&cp);
        let mut engine = DemandEngine::new(&cp, DemandConfig::default());
        let (cg, _) = CallGraph::from_demand(&mut engine);
        // A cap that always bites (every function gets only its base clone
        // plus at most a couple of contexts).
        let config = CloneConfig {
            k: 2,
            max_clones: cp.funcs().len() + 2,
            clone_heap: true,
        };
        let cloned = clone_expand(&cp, &cg, &config);
        assert!(cloned.clone_count <= config.max_clones, "case {case}");
        let solution = ddpa_anders::solve(&cloned.program);
        let cs = CsAnalysis { cloned, solution };
        for (n, pts) in projected(&cs, &cp) {
            for t in pts {
                assert!(
                    ci.points_to(n, t),
                    "case {case}: capped expansion produced a spurious fact"
                );
            }
        }
    }
}
