//! Context-sensitivity via bounded call-string cloning.
//!
//! The PLDI 2001 analysis is context-insensitive (CI): all calls to a
//! function merge their arguments, so `id(&a); id(&b)` makes *both* call
//! results point to `{a, b}`. The classic remedy — and the standard
//! extension in the paper's line of work — is **k-limited call-string
//! context-sensitivity**, realized here by the equally classic *cloning*
//! construction:
//!
//! 1. resolve the (CI) call graph — itself a demand-driven client;
//! 2. enumerate, per function, the reachable call strings of length ≤ k
//!    (the *contexts*), with a global clone budget that gracefully merges
//!    overflow into the context-free clone;
//! 3. clone each function's locals, temporaries, formals, return slot
//!    (and optionally heap sites) per context, instantiate its constraints
//!    per clone, and retarget every call site to the callee clone selected
//!    by pushing the site onto the caller's context;
//! 4. run **any** existing engine — exhaustive or demand — on the expanded
//!    program, and project answers back through the clone maps.
//!
//! Because the output is an ordinary [`ConstraintProgram`], the demand
//! engine, budgets, memoization, tracing, and every client work on it
//! unchanged — context-sensitivity composes with the whole stack.
//!
//! Precision never degrades: the projected context-sensitive solution is
//! a subset of the CI solution on every node (property-tested), and the
//! construction is sound for the same reason function inlining is.
//!
//! # Examples
//!
//! ```
//! use ddpa_cxt::{CloneConfig, CsAnalysis};
//!
//! let src = r#"
//!     int a; int b;
//!     int *id(int *p) { return p; }
//!     void main() {
//!         int *r1 = id(&a);
//!         int *r2 = id(&b);
//!     }
//! "#;
//! let program = ddpa_ir::parse(src)?;
//! let cp = ddpa_constraints::lower(&program)?;
//! let r1 = cp.node_ids().find(|&n| cp.display_node(n) == "main::r1").expect("r1");
//!
//! // Context-insensitive: r1 points to both a and b.
//! let ci = ddpa_anders::solve(&cp);
//! assert_eq!(ci.pts(r1).len(), 2);
//!
//! // k=1 call-string sensitivity: r1 points to a only.
//! let cs = CsAnalysis::run(&cp, &CloneConfig::with_k(1));
//! assert_eq!(cs.pts_of(r1).len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod clone;
pub mod context;

pub use analysis::CsAnalysis;
pub use clone::{clone_expand, CloneConfig, ClonedProgram};
pub use context::{Context, ContextTable, CtxId};
