//! Interned k-limited call strings.

use std::collections::HashMap;

use ddpa_constraints::CallSiteId;
use ddpa_support::define_index;

define_index! {
    /// An interned context (call string).
    pub struct CtxId;
}

/// A call string: the last ≤ k call sites on the (abstract) stack,
/// innermost last. The empty string is the context-free context.
pub type Context = Vec<CallSiteId>;

/// Interns contexts and implements the k-limited push.
#[derive(Debug)]
pub struct ContextTable {
    k: usize,
    contexts: Vec<Context>,
    index: HashMap<Context, CtxId>,
}

impl ContextTable {
    /// A table for call strings of length ≤ `k`. The empty context is
    /// pre-interned as [`ContextTable::EMPTY`].
    pub fn new(k: usize) -> Self {
        let mut table = ContextTable {
            k,
            contexts: Vec::new(),
            index: HashMap::new(),
        };
        let empty = table.intern(Vec::new());
        debug_assert_eq!(empty, Self::EMPTY);
        table
    }

    /// The context-free (empty call string) context.
    pub const EMPTY: CtxId = CtxId::from_u32(0);

    /// The configured depth limit.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct contexts interned so far.
    pub fn len(&self) -> usize {
        self.contexts.len()
    }

    /// Returns `true` if only the empty context exists.
    pub fn is_empty(&self) -> bool {
        self.contexts.len() <= 1
    }

    /// Interns a context.
    pub fn intern(&mut self, ctx: Context) -> CtxId {
        debug_assert!(ctx.len() <= self.k, "context exceeds k");
        if let Some(&id) = self.index.get(&ctx) {
            return id;
        }
        let id = CtxId::from_u32(self.contexts.len() as u32);
        self.contexts.push(ctx.clone());
        self.index.insert(ctx, id);
        id
    }

    /// The call string of `id`.
    pub fn resolve(&self, id: CtxId) -> &Context {
        &self.contexts[id.as_u32() as usize]
    }

    /// Pushes `cs` onto `ctx`, keeping only the innermost `k` sites.
    pub fn push(&mut self, ctx: CtxId, cs: CallSiteId) -> CtxId {
        if self.k == 0 {
            return Self::EMPTY;
        }
        let mut string = self.resolve(ctx).clone();
        string.push(cs);
        if string.len() > self.k {
            string.remove(0);
        }
        self.intern(string)
    }

    /// A short display form (`[]`, `[3]`, `[3,7]`).
    pub fn display(&self, id: CtxId) -> String {
        let string = self.resolve(id);
        let parts: Vec<String> = string.iter().map(|cs| cs.as_u32().to_string()).collect();
        format!("[{}]", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(n: u32) -> CallSiteId {
        CallSiteId::from_u32(n)
    }

    #[test]
    fn empty_context_is_id_zero() {
        let t = ContextTable::new(2);
        assert_eq!(t.resolve(ContextTable::EMPTY), &Vec::<CallSiteId>::new());
        assert_eq!(t.display(ContextTable::EMPTY), "[]");
    }

    #[test]
    fn push_truncates_to_k() {
        let mut t = ContextTable::new(2);
        let c1 = t.push(ContextTable::EMPTY, cs(1));
        let c12 = t.push(c1, cs(2));
        let c23 = t.push(c12, cs(3));
        assert_eq!(t.resolve(c1), &vec![cs(1)]);
        assert_eq!(t.resolve(c12), &vec![cs(1), cs(2)]);
        assert_eq!(t.resolve(c23), &vec![cs(2), cs(3)]);
        assert_eq!(t.display(c23), "[2,3]");
    }

    #[test]
    fn k_zero_always_empty() {
        let mut t = ContextTable::new(0);
        let c = t.push(ContextTable::EMPTY, cs(9));
        assert_eq!(c, ContextTable::EMPTY);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn interning_deduplicates() {
        let mut t = ContextTable::new(3);
        let a = t.push(ContextTable::EMPTY, cs(4));
        let b = t.push(ContextTable::EMPTY, cs(4));
        assert_eq!(a, b);
        assert_eq!(t.len(), 2);
    }
}
