//! The cloning transformation.

use std::collections::HashMap;

use ddpa_callgraph::CallGraph;
use ddpa_constraints::{CalleeRef, ConstraintBuilder, ConstraintProgram, FuncId, NodeId, NodeKind};

use crate::context::{ContextTable, CtxId};

/// Configuration for [`clone_expand`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CloneConfig {
    /// Call-string depth. `0` disables context-sensitivity (the expansion
    /// then equals the original analysis with the call graph fixed).
    pub k: usize,
    /// Global cap on `(function, context)` clones; overflow gracefully
    /// merges into the function's context-free clone.
    pub max_clones: usize,
    /// Also clone heap allocation sites per context (heap cloning — the
    /// piece that distinguishes `malloc` wrappers' allocations).
    pub clone_heap: bool,
}

impl Default for CloneConfig {
    fn default() -> Self {
        CloneConfig {
            k: 1,
            max_clones: 20_000,
            clone_heap: true,
        }
    }
}

impl CloneConfig {
    /// A config with call-string depth `k` and default limits.
    pub fn with_k(k: usize) -> Self {
        CloneConfig {
            k,
            ..CloneConfig::default()
        }
    }
}

/// The result of [`clone_expand`]: an ordinary constraint program plus the
/// maps to translate between original and cloned node ids.
#[derive(Debug)]
pub struct ClonedProgram {
    /// The expanded program (run any engine on it).
    pub program: ConstraintProgram,
    /// Interned contexts.
    pub contexts: ContextTable,
    /// `(function, context)` clones created.
    pub clone_count: usize,
    /// `true` if [`CloneConfig::max_clones`] was hit (some calls merged
    /// into context-free clones).
    pub capped: bool,
    origin: HashMap<NodeId, NodeId>,
    clones: HashMap<NodeId, Vec<NodeId>>,
}

impl ClonedProgram {
    /// The original node a cloned node came from.
    pub fn origin_of(&self, node: NodeId) -> Option<NodeId> {
        self.origin.get(&node).copied()
    }

    /// All clones of an original node (one entry for shared nodes).
    pub fn clones_of(&self, orig: NodeId) -> &[NodeId] {
        self.clones.get(&orig).map_or(&[], Vec::as_slice)
    }

    /// Node-count expansion factor.
    pub fn expansion_factor(&self, original: &ConstraintProgram) -> f64 {
        self.program.num_nodes() as f64 / original.num_nodes() as f64
    }
}

/// Expands `cp` into a context-sensitive clone per `config`, using `cg`
/// (a sound call graph, e.g. from the demand client) to fix call targets.
pub fn clone_expand(cp: &ConstraintProgram, cg: &CallGraph, config: &CloneConfig) -> ClonedProgram {
    Expander::new(cp, cg, config).run()
}

struct Expander<'p> {
    cp: &'p ConstraintProgram,
    cg: &'p CallGraph,
    config: CloneConfig,
    table: ContextTable,
    /// Enumerated `(function, context)` pairs, insertion-ordered.
    pairs: Vec<(FuncId, CtxId)>,
    pair_index: HashMap<(FuncId, CtxId), usize>,
    capped: bool,
    builder: ConstraintBuilder,
    /// New function per (function, context).
    new_funcs: HashMap<(FuncId, CtxId), FuncId>,
    /// New node per (original owned node, context).
    owned_map: HashMap<(NodeId, CtxId), NodeId>,
    /// New node per original shared node.
    shared_map: HashMap<NodeId, NodeId>,
    origin: HashMap<NodeId, NodeId>,
    clones: HashMap<NodeId, Vec<NodeId>>,
    /// Call sites per caller function (None = global initializers).
    sites_of: HashMap<Option<FuncId>, Vec<ddpa_constraints::CallSiteId>>,
}

impl<'p> Expander<'p> {
    fn new(cp: &'p ConstraintProgram, cg: &'p CallGraph, config: &CloneConfig) -> Self {
        let mut sites_of: HashMap<Option<FuncId>, Vec<_>> = HashMap::new();
        for cs in cp.callsites().indices() {
            sites_of.entry(cp.callsite(cs).caller).or_default().push(cs);
        }
        Expander {
            cp,
            cg,
            config: config.clone(),
            table: ContextTable::new(config.k),
            pairs: Vec::new(),
            pair_index: HashMap::new(),
            capped: false,
            builder: ConstraintBuilder::new(),
            new_funcs: HashMap::new(),
            owned_map: HashMap::new(),
            shared_map: HashMap::new(),
            origin: HashMap::new(),
            clones: HashMap::new(),
            sites_of,
        }
    }

    fn add_pair(&mut self, f: FuncId, ctx: CtxId) -> bool {
        if self.pair_index.contains_key(&(f, ctx)) {
            return false;
        }
        if self.pairs.len() >= self.config.max_clones {
            self.capped = true;
            return false;
        }
        self.pair_index.insert((f, ctx), self.pairs.len());
        self.pairs.push((f, ctx));
        true
    }

    /// Phase A: enumerate reachable `(function, context)` pairs.
    fn enumerate(&mut self) {
        // Every function gets the context-free clone: it serves as the
        // root context, the unknown-caller context, and the overflow
        // fallback.
        let mut worklist: Vec<(FuncId, CtxId)> = Vec::new();
        for f in self.cp.funcs().indices() {
            if self.add_pair(f, ContextTable::EMPTY) {
                worklist.push((f, ContextTable::EMPTY));
            }
        }
        while let Some((f, ctx)) = worklist.pop() {
            let sites = self.sites_of.get(&Some(f)).cloned().unwrap_or_default();
            for cs in sites {
                let nctx = self.table.push(ctx, cs);
                for &t in self.cg.targets(cs) {
                    if self.add_pair(t, nctx) {
                        worklist.push((t, nctx));
                    }
                }
            }
        }
    }

    /// The clone of `f` under `ctx`, falling back to the context-free one.
    fn func_clone(&self, f: FuncId, ctx: CtxId) -> FuncId {
        self.new_funcs
            .get(&(f, ctx))
            .or_else(|| self.new_funcs.get(&(f, ContextTable::EMPTY)))
            .copied()
            .expect("every function has a context-free clone")
    }

    /// Records provenance of a fresh node.
    fn record(&mut self, orig: NodeId, new: NodeId) {
        self.origin.insert(new, orig);
        self.clones.entry(orig).or_default().push(new);
    }

    /// Is this node cloned per context (vs shared)?
    fn clone_eligible(&self, node: NodeId) -> bool {
        if self.cp.owner_of(node).is_none() {
            return false;
        }
        match self.cp.node(node).kind {
            NodeKind::Var { .. } | NodeKind::Temp { .. } => true,
            NodeKind::Heap { .. } => self.config.clone_heap,
            // Formals/rets are materialized by func creation; fields follow
            // their parent; function objects are shared.
            NodeKind::Formal { .. }
            | NodeKind::Ret { .. }
            | NodeKind::Field { .. }
            | NodeKind::Func { .. } => false,
        }
    }

    /// Phase B1: create function clones (objects, formals, returns).
    fn create_funcs(&mut self) {
        for i in 0..self.pairs.len() {
            let (f, ctx) = self.pairs[i];
            let info = self.cp.func(f);
            let base = self.cp.interner().resolve(info.name).to_owned();
            let name = if ctx == ContextTable::EMPTY {
                base
            } else {
                format!("{base}@{}", self.table.display(ctx))
            };
            let nf = self.builder.func(&name, info.formals.len());
            self.new_funcs.insert((f, ctx), nf);
            let ninfo = self.builder.func_info(nf).clone();
            self.record(info.object, ninfo.object);
            self.record(info.ret, ninfo.ret);
            for (orig, new) in info.formals.iter().zip(&ninfo.formals) {
                self.record(*orig, *new);
            }
        }
    }

    /// Phase B2: create all variable/temp/heap clones and shared nodes.
    fn create_nodes(&mut self) {
        for node in self.cp.node_ids() {
            match self.cp.node(node).kind {
                // Created with the functions / derived from parents.
                NodeKind::Formal { .. }
                | NodeKind::Ret { .. }
                | NodeKind::Func { .. }
                | NodeKind::Field { .. } => continue,
                NodeKind::Var { .. } | NodeKind::Temp { .. } | NodeKind::Heap { .. } => {}
            }
            if self.clone_eligible(node) {
                let owner = self.cp.owner_of(node).expect("eligible nodes are owned");
                let contexts: Vec<CtxId> = self
                    .pairs
                    .iter()
                    .filter(|(f, _)| *f == owner)
                    .map(|(_, c)| *c)
                    .collect();
                for ctx in contexts {
                    let new = self.fresh_like(node, ctx);
                    let nf = self.func_clone(owner, ctx);
                    self.builder.set_owner(new, nf);
                    self.owned_map.insert((node, ctx), new);
                    self.record(node, new);
                }
            } else {
                let new = self.fresh_like(node, ContextTable::EMPTY);
                if let Some(owner) = self.cp.owner_of(node) {
                    let nf = self.func_clone(owner, ContextTable::EMPTY);
                    self.builder.set_owner(new, nf);
                }
                self.shared_map.insert(node, new);
                self.record(node, new);
            }
        }
    }

    /// Creates a fresh node of the same kind as `node`, suffixing names
    /// with the context where needed for uniqueness.
    fn fresh_like(&mut self, node: NodeId, ctx: CtxId) -> NodeId {
        match self.cp.node(node).kind {
            NodeKind::Var { .. } => {
                let base = self.cp.display_node(node);
                let name = if ctx == ContextTable::EMPTY {
                    base
                } else {
                    format!("{base}@{}", self.table.display(ctx))
                };
                self.builder.var(&name)
            }
            NodeKind::Temp { .. } => self.builder.temp(),
            NodeKind::Heap { .. } => self.builder.heap(),
            _ => unreachable!("fresh_like is only called for vars/temps/heaps"),
        }
    }

    /// Phase B3: register field nodes on every clone of every parent.
    fn create_fields(&mut self) {
        // Sorted by original field-node id: parents precede nested fields.
        for (parent, field, orig_field) in self.cp.field_nodes() {
            let parents: Vec<NodeId> = self.clones.get(&parent).cloned().unwrap_or_default();
            for p in parents {
                let new = self.builder.field_node(p, field);
                self.record(orig_field, new);
            }
        }
    }

    /// Maps an original node under a context.
    fn map(&mut self, node: NodeId, ctx: CtxId) -> NodeId {
        if let Some(&n) = self.shared_map.get(&node) {
            return n;
        }
        if let Some(&n) = self.owned_map.get(&(node, ctx)) {
            return n;
        }
        match self.cp.node(node).kind {
            NodeKind::Formal { func, index } => {
                let nf = self.resolve_ctx_func(func, ctx);
                self.builder.func_info(nf).formals[index as usize]
            }
            NodeKind::Ret { func } => {
                let nf = self.resolve_ctx_func(func, ctx);
                self.builder.func_info(nf).ret
            }
            NodeKind::Func { func } => {
                let nf = self.func_clone(func, ContextTable::EMPTY);
                self.builder.func_info(nf).object
            }
            NodeKind::Field { parent, field } => {
                let p = self.map(parent, ctx);
                self.builder.field_node(p, field)
            }
            _ => {
                // An owned node referenced under a context its owner does
                // not have (possible only in hand-built programs mixing
                // owners): fall back to the context-free clone.
                self.owned_map
                    .get(&(node, ContextTable::EMPTY))
                    .copied()
                    .expect("owned nodes always have a context-free clone")
            }
        }
    }

    fn resolve_ctx_func(&self, f: FuncId, ctx: CtxId) -> FuncId {
        self.new_funcs
            .get(&(f, ctx))
            .copied()
            .unwrap_or_else(|| self.func_clone(f, ContextTable::EMPTY))
    }

    /// The owning function of a constraint: the first owned operand.
    fn constraint_owner(&self, nodes: &[NodeId]) -> Option<FuncId> {
        nodes.iter().find_map(|&n| self.cp.owner_of(n))
    }

    /// Contexts a constraint must be instantiated under.
    fn instantiation_ctxs(&self, nodes: &[NodeId]) -> Vec<CtxId> {
        match self.constraint_owner(nodes) {
            None => vec![ContextTable::EMPTY],
            Some(f) => self
                .pairs
                .iter()
                .filter(|(g, _)| *g == f)
                .map(|(_, c)| *c)
                .collect(),
        }
    }

    /// Phase B4: instantiate the primitive constraints.
    fn create_constraints(&mut self) {
        for i in 0..self.cp.addr_ofs().len() {
            let a = self.cp.addr_ofs()[i];
            for ctx in self.instantiation_ctxs(&[a.dst, a.obj]) {
                let (dst, obj) = (self.map(a.dst, ctx), self.map(a.obj, ctx));
                self.builder.addr_of(dst, obj);
            }
        }
        for i in 0..self.cp.copies().len() {
            let c = self.cp.copies()[i];
            for ctx in self.instantiation_ctxs(&[c.dst, c.src]) {
                let (dst, src) = (self.map(c.dst, ctx), self.map(c.src, ctx));
                self.builder.copy(dst, src);
            }
        }
        for i in 0..self.cp.loads().len() {
            let l = self.cp.loads()[i];
            for ctx in self.instantiation_ctxs(&[l.dst, l.ptr]) {
                let (dst, ptr) = (self.map(l.dst, ctx), self.map(l.ptr, ctx));
                self.builder.load(dst, ptr);
            }
        }
        for i in 0..self.cp.stores().len() {
            let s = self.cp.stores()[i];
            for ctx in self.instantiation_ctxs(&[s.ptr, s.src]) {
                let (ptr, src) = (self.map(s.ptr, ctx), self.map(s.src, ctx));
                self.builder.store(ptr, src);
            }
        }
        for i in 0..self.cp.field_addrs().len() {
            let fa = self.cp.field_addrs()[i];
            for ctx in self.instantiation_ctxs(&[fa.dst, fa.base]) {
                let (dst, base) = (self.map(fa.dst, ctx), self.map(fa.base, ctx));
                self.builder.field_addr(dst, base, fa.field);
            }
        }
    }

    /// Phase B5: devirtualize and retarget call sites per caller context.
    fn create_callsites(&mut self) {
        for cs in self.cp.callsites().indices() {
            let site = self.cp.callsite(cs).clone();
            let caller_ctxs: Vec<(Option<FuncId>, CtxId)> = match site.caller {
                Some(f) => self
                    .pairs
                    .iter()
                    .filter(|(g, _)| *g == f)
                    .map(|(_, c)| (Some(f), *c))
                    .collect(),
                None => vec![(None, ContextTable::EMPTY)],
            };
            // In the expansion the call graph is fixed: indirect sites
            // become one direct call per resolved target.
            let targets: Vec<FuncId> = match site.callee {
                CalleeRef::Direct(f) => vec![f],
                CalleeRef::Indirect(_) => self.cg.targets(cs).to_vec(),
            };
            for (caller, ctx) in caller_ctxs {
                let nctx = self.table.push(ctx, cs);
                let args: Vec<Option<NodeId>> = site
                    .args
                    .iter()
                    .map(|a| a.map(|n| self.map(n, ctx)))
                    .collect();
                let ret_dst = site.ret_dst.map(|n| self.map(n, ctx));
                for &t in &targets {
                    let callee = self.func_clone(t, nctx);
                    let new_cs = self.builder.call_direct(callee, args.clone(), ret_dst);
                    if let Some(f) = caller {
                        let nf = self.func_clone(f, ctx);
                        self.builder.set_caller(new_cs, nf);
                    }
                }
            }
        }
    }

    fn run(mut self) -> ClonedProgram {
        self.enumerate();
        self.create_funcs();
        self.create_nodes();
        self.create_fields();
        self.create_constraints();
        self.create_callsites();
        ClonedProgram {
            program: self.builder.build(),
            contexts: self.table,
            clone_count: self.pairs.len(),
            capped: self.capped,
            origin: self.origin,
            clones: self.clones,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpa_demand::{DemandConfig, DemandEngine};

    fn build_cg(cp: &ConstraintProgram) -> CallGraph {
        let mut engine = DemandEngine::new(cp, DemandConfig::default());
        CallGraph::from_demand(&mut engine).0
    }

    fn compile(src: &str) -> ConstraintProgram {
        let program = ddpa_ir::parse(src).expect("parses");
        ddpa_ir::check(&program).expect("checks");
        ddpa_constraints::lower(&program).expect("lowers")
    }

    #[test]
    fn k1_distinguishes_id_calls() {
        let cp = compile(
            "int a; int b; \
             int *id(int *p) { return p; } \
             void main() { int *r1 = id(&a); int *r2 = id(&b); }",
        );
        let cg = build_cg(&cp);
        let cloned = clone_expand(&cp, &cg, &CloneConfig::with_k(1));
        // id@[], main@[], id@[cs1], id@[cs2].
        assert_eq!(cloned.clone_count, 4);
        let sol = ddpa_anders::solve(&cloned.program);
        let r1 = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "main::r1")
            .expect("r1");
        let mut targets: Vec<NodeId> = Vec::new();
        for &c in cloned.clones_of(r1) {
            for t in sol.pts_nodes(c) {
                targets.push(cloned.origin_of(t).expect("clone has origin"));
            }
        }
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), 1, "k=1 keeps the two id() calls apart");
    }

    #[test]
    fn k0_matches_context_insensitive() {
        let cp = compile(
            "int a; int b; \
             int *id(int *p) { return p; } \
             void main() { int *r1 = id(&a); int *r2 = id(&b); }",
        );
        let cg = build_cg(&cp);
        let cloned = clone_expand(&cp, &cg, &CloneConfig::with_k(0));
        assert_eq!(cloned.clone_count, cp.funcs().len());
        let ci = ddpa_anders::solve(&cp);
        let sol = ddpa_anders::solve(&cloned.program);
        for node in cp.node_ids() {
            let mut projected: Vec<NodeId> = Vec::new();
            for &c in cloned.clones_of(node) {
                for t in sol.pts_nodes(c) {
                    projected.push(cloned.origin_of(t).expect("origin"));
                }
            }
            projected.sort_unstable();
            projected.dedup();
            assert_eq!(
                projected,
                ci.pts_nodes(node),
                "k=0 differs at {}",
                cp.display_node(node)
            );
        }
    }

    #[test]
    fn recursion_terminates_and_stays_sound() {
        let cp = compile(
            "int g; \
             int *walk(int *p) { if (g == 0) return p; int *r = walk(p); return r; } \
             void main() { int *x = walk(&g); }",
        );
        let cg = build_cg(&cp);
        for k in [0usize, 1, 2] {
            let cloned = clone_expand(&cp, &cg, &CloneConfig::with_k(k));
            let sol = ddpa_anders::solve(&cloned.program);
            let x = cp
                .node_ids()
                .find(|&n| cp.display_node(n) == "main::x")
                .expect("x");
            let mut projected: Vec<String> = Vec::new();
            for &c in cloned.clones_of(x) {
                for t in sol.pts_nodes(c) {
                    projected.push(cp.display_node(cloned.origin_of(t).expect("origin")));
                }
            }
            projected.sort();
            projected.dedup();
            assert_eq!(projected, vec!["g"], "k={k}");
        }
    }

    #[test]
    fn clone_cap_merges_gracefully() {
        let cp = compile(
            "int a; \
             int *l3(int *p) { return p; } \
             int *l2(int *p) { return l3(p); } \
             int *l1(int *p) { return l2(p); } \
             void main() { int *r = l1(&a); int *s = l1(r); }",
        );
        let cg = build_cg(&cp);
        let config = CloneConfig {
            k: 3,
            max_clones: 5,
            clone_heap: true,
        };
        let cloned = clone_expand(&cp, &cg, &config);
        assert!(cloned.capped);
        assert!(cloned.clone_count <= 5);
        // Still sound: r resolves to a.
        let sol = ddpa_anders::solve(&cloned.program);
        let r = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "main::r")
            .expect("r");
        let found = cloned.clones_of(r).iter().any(|&c| {
            sol.pts_nodes(c)
                .iter()
                .any(|&t| cp.display_node(cloned.origin_of(t).expect("origin")) == "a")
        });
        assert!(found);
    }

    #[test]
    fn heap_cloning_distinguishes_wrapper_allocations() {
        let cp = compile(
            "int *wrap() { int *p = malloc(); return p; } \
             void main() { int *x = wrap(); int *y = wrap(); }",
        );
        let cg = build_cg(&cp);
        // With heap cloning, x and y get different allocation sites.
        let with = clone_expand(&cp, &cg, &CloneConfig::with_k(1));
        let sol = ddpa_anders::solve(&with.program);
        let x = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "main::x")
            .expect("x");
        let y = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "main::y")
            .expect("y");
        let set_of = |node: NodeId, cloned: &ClonedProgram, sol: &ddpa_anders::Solution| {
            let mut v: Vec<NodeId> = Vec::new();
            for &c in cloned.clones_of(node) {
                v.extend(sol.pts_nodes(c));
            }
            v.sort_unstable();
            v.dedup();
            v
        };
        let (xs, ys) = (set_of(x, &with, &sol), set_of(y, &with, &sol));
        assert!(!xs.is_empty() && !ys.is_empty());
        assert_ne!(xs, ys, "cloned heap sites are distinct");

        // Without heap cloning they share the allocation site.
        let without = clone_expand(
            &cp,
            &cg,
            &CloneConfig {
                clone_heap: false,
                ..CloneConfig::with_k(1)
            },
        );
        let sol = ddpa_anders::solve(&without.program);
        let (xs, ys) = (set_of(x, &without, &sol), set_of(y, &without, &sol));
        assert_eq!(xs, ys, "shared heap site");
    }
}
