//! High-level context-sensitive analysis: expand, solve, project.

use ddpa_anders::Solution;
use ddpa_callgraph::CallGraph;
use ddpa_constraints::{ConstraintProgram, NodeId};
use ddpa_demand::{DemandConfig, DemandEngine};

use crate::clone::{clone_expand, CloneConfig, ClonedProgram};

/// A solved context-sensitive analysis over an original program.
///
/// Wraps the cloned program and its exhaustive solution; queries are asked
/// in terms of the *original* program's node ids and answered by
/// projecting through the clone maps.
#[derive(Debug)]
pub struct CsAnalysis {
    /// The expansion.
    pub cloned: ClonedProgram,
    /// The solution over the expanded program.
    pub solution: Solution,
}

impl CsAnalysis {
    /// Resolves the call graph on demand, expands `cp` under `config`, and
    /// solves the expansion exhaustively.
    pub fn run(cp: &ConstraintProgram, config: &CloneConfig) -> Self {
        let mut engine = DemandEngine::new(cp, DemandConfig::default());
        let (cg, _) = CallGraph::from_demand(&mut engine);
        Self::run_with_callgraph(cp, &cg, config)
    }

    /// Like [`CsAnalysis::run`], reusing an already-computed call graph.
    pub fn run_with_callgraph(
        cp: &ConstraintProgram,
        cg: &CallGraph,
        config: &CloneConfig,
    ) -> Self {
        let cloned = clone_expand(cp, cg, config);
        let solution = ddpa_anders::solve(&cloned.program);
        CsAnalysis { cloned, solution }
    }

    /// The context-sensitive points-to set of an *original* node,
    /// projected back to original node ids (sorted, deduplicated): the
    /// union over the node's clones.
    pub fn pts_of(&self, orig: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for &clone in self.cloned.clones_of(orig) {
            for target in self.solution.pts_nodes(clone) {
                if let Some(o) = self.cloned.origin_of(target) {
                    out.push(o);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Σ over all original nodes of the projected set size — the precision
    /// metric compared against the context-insensitive total.
    pub fn total_pts(&self, cp: &ConstraintProgram) -> usize {
        cp.node_ids().map(|n| self.pts_of(n).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> ConstraintProgram {
        let program = ddpa_ir::parse(src).expect("parses");
        ddpa_constraints::lower(&program).expect("lowers")
    }

    #[test]
    fn precision_improves_monotonically_with_k() {
        let cp = compile(
            "int a; int b; int c; \
             int *id(int *p) { return p; } \
             int *id2(int *p) { int *t = id(p); return t; } \
             void main() { int *r1 = id2(&a); int *r2 = id2(&b); int *r3 = id2(&c); }",
        );
        let ci = ddpa_anders::solve(&cp);
        let ci_total: usize = cp.node_ids().map(|n| ci.pts(n).len()).sum();
        let mut last = usize::MAX;
        for k in [0usize, 1, 2] {
            let cs = CsAnalysis::run(&cp, &CloneConfig::with_k(k));
            let total = cs.total_pts(&cp);
            assert!(total <= ci_total, "k={k}: CS may never lose precision");
            assert!(
                total <= last,
                "k={k}: deeper contexts may never lose precision"
            );
            last = total;
            // Subset on every node.
            for n in cp.node_ids() {
                let projected = cs.pts_of(n);
                for t in &projected {
                    assert!(
                        ci.points_to(n, *t),
                        "k={k}: spurious CS fact at {}",
                        cp.display_node(n)
                    );
                }
            }
        }
        // Depth 2 fully disambiguates the two-level wrapper.
        let cs2 = CsAnalysis::run(&cp, &CloneConfig::with_k(2));
        let r1 = cp
            .node_ids()
            .find(|&n| cp.display_node(n) == "main::r1")
            .expect("r1");
        assert_eq!(cs2.pts_of(r1).len(), 1);
        // Depth 1 cannot (the inner id still merges).
        let cs1 = CsAnalysis::run(&cp, &CloneConfig::with_k(1));
        assert_eq!(cs1.pts_of(r1).len(), 3);
    }

    #[test]
    fn works_on_generated_workloads() {
        let cp = ddpa_gen::generate_random(&ddpa_gen::RandomConfig::sized(5, 800));
        let ci = ddpa_anders::solve(&cp);
        let cs = CsAnalysis::run(&cp, &CloneConfig::with_k(1));
        for n in cp.node_ids() {
            for t in cs.pts_of(n) {
                assert!(
                    ci.points_to(n, t),
                    "spurious CS fact at {}",
                    cp.display_node(n)
                );
            }
        }
        let ci_total: usize = cp.node_ids().map(|n| ci.pts(n).len()).sum();
        assert!(cs.total_pts(&cp) <= ci_total);
    }
}
